//! The SPFE session server: a TCP accept loop multiplexing concurrent
//! sessions, one thread per connection.
//!
//! Each connection carries exactly one session, opened by a Hello frame
//! whose label names the driver and whose payload selects the mode
//! ([`SessionMode`]) — or a [`FrameKind::Stats`] scrape, answered with a
//! live `spfe-metrics/v1` snapshot on the same listener (DESIGN.md §16).
//! Sessions are fully isolated: a connection that stalls, dies
//! mid-protocol, sends garbage, or even panics its session thread poisons
//! only its own session — the accept loop and every other session keep
//! running, which is the property `tests/net_timeout.rs` pins down.
//!
//! Every session settles into the operational [`Metrics`] registry:
//! opened/completed counters, the typed [`FailureKind`] taxonomy instead
//! of one opaque `failed` count, per-frame byte totals, and a
//! per-`(driver, mode)` wall-clock histogram folded at close. With
//! `SPFE_LOG` set, each session additionally emits one structured JSONL
//! line on stderr ([`SessionLogRecord`]).
//!
//! Shutdown is cooperative: [`Server::shutdown`] flips a flag and nudges
//! the accept loop awake with a loopback connection, then joins it. No
//! signal handling, no non-std dependencies.

use spfe::harness;
use spfe_obs::metrics::{
    epoch_micros, FailureKind, Metrics, MetricsSnapshot, SessionLogRecord, SessionUsage,
};
use spfe_obs::trace as journal;
use spfe_transport::frame::{read_frame_or_eof, read_frame_or_eof_traced, write_frame};
use spfe_transport::{
    FlowMeter, Frame, FrameKind, Lamport, ProtocolError, SessionCore, SessionMode,
};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection read deadline. A session whose client goes quiet
    /// for longer is torn down (its thread exits); other sessions are
    /// unaffected. `None` waits forever.
    pub read_deadline: Option<Duration>,
    /// Fault injection for tests: a Hello naming this driver makes the
    /// session thread panic mid-handshake, exercising the unwind-capture
    /// path (counted as [`FailureKind::Panic`]). Never set in production.
    pub inject_panic_driver: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_deadline: Some(Duration::from_secs(30)),
            inject_panic_driver: None,
        }
    }
}

/// A running SPFE session server.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from binding the listener.
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Metrics::new());
        let accept = {
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || accept_loop(&listener, &config, &stop, &metrics))
        };
        Ok(Server {
            addr: local,
            stop,
            metrics,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics registry (shared with the accept loop).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// A point-in-time copy of every operational counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Sessions opened so far (a connection that showed frame activity;
    /// clean connect-and-close probes and metrics scrapes are excluded).
    pub fn sessions_opened(&self) -> u64 {
        self.metrics.sessions_opened()
    }

    /// Sessions that ran to a clean close (Bye or clean EOF).
    pub fn sessions_completed(&self) -> u64 {
        self.metrics.sessions_completed()
    }

    /// Sessions torn down on an error, summed over the failure taxonomy.
    pub fn sessions_failed(&self) -> u64 {
        self.metrics.sessions_failed()
    }

    /// Sessions torn down with one specific [`FailureKind`].
    pub fn failures(&self, kind: FailureKind) -> u64 {
        self.metrics.failures(kind)
    }

    /// Stops accepting, wakes the accept loop, and joins it. In-flight
    /// session threads run to completion on their own; their sockets are
    /// not yanked.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept() awake with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Maps a session-stage [`ProtocolError`] into the failure taxonomy.
/// `handshake` is true until the Hello acknowledgement was written.
pub fn classify_failure(handshake: bool, e: &ProtocolError) -> FailureKind {
    match e {
        ProtocolError::Codec(_) => FailureKind::CodecReject,
        ProtocolError::Timeout { .. } if handshake => FailureKind::HandshakeTimeout,
        ProtocolError::Timeout { .. } | ProtocolError::RetriesExhausted { .. } => {
            FailureKind::TransferTimeout
        }
        ProtocolError::ServerCrashed { .. } | ProtocolError::Dropped { .. } => FailureKind::Io,
        _ => FailureKind::ProtocolError,
    }
}

fn accept_loop(
    listener: &TcpListener,
    config: &ServerConfig,
    stop: &AtomicBool,
    metrics: &Arc<Metrics>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let config = config.clone();
        let metrics = Arc::clone(metrics);
        std::thread::spawn(move || run_session(stream, &config, &metrics));
    }
}

/// How a session ended when no failure tore it down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionEnd {
    /// Clean EOF before any frame (the shutdown nudge, port scanners):
    /// not a session, nothing counted.
    Noop,
    /// A metrics scrape; tracked as `stats_probes`, not as a session.
    Stats,
    /// A session that ran to Bye or clean EOF.
    Completed,
}

/// A torn-down session: the classification plus the underlying error.
#[derive(Debug)]
struct SessionFailure {
    kind: FailureKind,
    #[allow(dead_code)] // kept for debug formatting in logs/tests
    error: ProtocolError,
}

/// What the session thread knows about itself, shared across the unwind
/// boundary so a panicking session still settles its partial accounting.
#[derive(Debug, Default)]
struct SessionCtx {
    session: u64,
    driver: String,
    mode: &'static str,
    /// The Hello mode byte, re-emitted on the session's trace-journal
    /// close event (0 = relay, 1 = compute).
    mode_code: u8,
    opened: bool,
    flow: FlowMeter,
}

fn lock_ctx<'a>(ctx: &'a Mutex<SessionCtx>) -> std::sync::MutexGuard<'a, SessionCtx> {
    ctx.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Counts the session as opened exactly once (first frame activity).
fn ensure_opened(ctx: &Mutex<SessionCtx>, metrics: &Metrics) {
    let mut c = lock_ctx(ctx);
    if !c.opened {
        c.opened = true;
        metrics.session_opened();
    }
}

/// Builds a classified failure, making sure the session was counted as
/// opened first so `opened == completed + failed + active` always holds.
fn fail(
    ctx: &Mutex<SessionCtx>,
    metrics: &Metrics,
    handshake: bool,
    error: ProtocolError,
) -> SessionFailure {
    ensure_opened(ctx, metrics);
    SessionFailure {
        kind: classify_failure(handshake, &error),
        error,
    }
}

/// Runs one connection to completion and settles its metrics + log line.
fn run_session(mut stream: TcpStream, config: &ServerConfig, metrics: &Arc<Metrics>) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_owned());
    let start = Instant::now();
    let ctx = Mutex::new(SessionCtx::default());
    let result = catch_unwind(AssertUnwindSafe(|| {
        serve_connection(&mut stream, config, metrics, &ctx)
    }));
    let ctx = ctx.into_inner().unwrap_or_else(PoisonError::into_inner);
    let outcome: Result<(), FailureKind> = match &result {
        Ok(Ok(SessionEnd::Noop)) | Ok(Ok(SessionEnd::Stats)) => return,
        Ok(Ok(SessionEnd::Completed)) => Ok(()),
        Ok(Err(f)) => Err(f.kind),
        Err(_) => {
            // The session thread panicked. The unwind is contained here:
            // count it, log it, and let the thread exit quietly.
            if !ctx.opened {
                metrics.session_opened();
            }
            Err(FailureKind::Panic)
        }
    };
    let usage = SessionUsage {
        bytes_in: ctx.flow.bytes_in,
        bytes_out: ctx.flow.bytes_out,
        frames_in: ctx.flow.frames_in,
        frames_out: ctx.flow.frames_out,
        half_rounds: u64::from(ctx.flow.half_rounds()),
        wall_micros: start.elapsed().as_micros() as u64,
    };
    let driver = if ctx.driver.is_empty() {
        "unknown"
    } else {
        ctx.driver.as_str()
    };
    let mode = if ctx.mode.is_empty() {
        "unknown"
    } else {
        ctx.mode
    };
    metrics.session_closed(driver, mode, outcome, usage);
    // Close the per-session span in this thread's trace journal; the
    // settle path runs even when the session failed or panicked, so a
    // captured server journal always balances its session slices.
    if ctx.opened {
        spfe_obs::net_session_event(false, ctx.session, driver, ctx.mode_code);
    }
    SessionLogRecord {
        seq: spfe_obs::metrics::next_log_seq(),
        ts_micros: epoch_micros(),
        session: ctx.session,
        peer: &peer,
        driver,
        mode,
        outcome: match outcome {
            Ok(()) => "ok",
            Err(kind) => kind.name(),
        },
        wall_micros: usage.wall_micros,
        bytes_in: usage.bytes_in,
        bytes_out: usage.bytes_out,
        half_rounds: usage.half_rounds,
    }
    .emit();
}

/// Sends an Error frame (best effort) and returns the protocol error.
fn abort(stream: &mut TcpStream, session: u64, label: &str, reason: &'static str) -> ProtocolError {
    let e = ProtocolError::InvalidMessage {
        label: "net-session",
        reason,
    };
    let frame = Frame {
        kind: FrameKind::Error,
        client_to_server: false,
        session,
        half_round: 0,
        server: 0,
        label: label.to_owned(),
        payload: reason.as_bytes().to_vec(),
    };
    let _ = write_frame(stream, &frame, 0, "net-error");
    e
}

/// Runs one session (or scrape) on the session's own thread.
fn serve_connection(
    stream: &mut TcpStream,
    config: &ServerConfig,
    metrics: &Metrics,
    ctx: &Mutex<SessionCtx>,
) -> Result<SessionEnd, SessionFailure> {
    if stream
        .set_read_timeout(config.read_deadline)
        .and_then(|()| stream.set_write_timeout(config.read_deadline))
        .is_err()
    {
        return Err(fail(
            ctx,
            metrics,
            true,
            ProtocolError::InvalidMessage {
                label: "net-session",
                reason: "could not configure socket deadlines",
            },
        ));
    }
    let hello = match read_frame_or_eof(stream, true, 0, "net-hello") {
        // The shutdown nudge (and port scanners) connect and immediately
        // close; that is a no-op, not a failed session.
        Ok(None) => return Ok(SessionEnd::Noop),
        Ok(Some(f)) => f,
        Err(e) => return Err(fail(ctx, metrics, true, e)),
    };
    if hello.kind == FrameKind::Stats {
        return Ok(stats_session(stream, metrics, hello));
    }
    ensure_opened(ctx, metrics);
    {
        let mut c = lock_ctx(ctx);
        c.session = hello.session;
        c.driver = hello.label.clone();
    }
    if hello.kind != FrameKind::Hello {
        return Err(fail(
            ctx,
            metrics,
            true,
            abort(stream, hello.session, "", "expected a hello frame"),
        ));
    }
    let session = hello.session;
    let mode = match hello.payload.first() {
        Some(0) => SessionMode::Relay,
        Some(1) => SessionMode::Compute,
        _ => {
            return Err(fail(
                ctx,
                metrics,
                true,
                abort(stream, session, &hello.label, "unknown session mode"),
            ))
        }
    };
    {
        let mut c = lock_ctx(ctx);
        c.mode = match mode {
            SessionMode::Relay => "relay",
            SessionMode::Compute => "compute",
        };
        c.mode_code = mode as u8;
    }
    spfe_obs::net_session_event(true, session, &hello.label, mode as u8);
    if config.inject_panic_driver.as_deref() == Some(hello.label.as_str()) {
        panic!("injected session panic (ServerConfig::inject_panic_driver)");
    }
    let cores = if mode == SessionMode::Compute {
        match harness::net_server_cores(&hello.label) {
            Some(c) => Some(c),
            None => {
                return Err(fail(
                    ctx,
                    metrics,
                    true,
                    abort(
                        stream,
                        session,
                        &hello.label,
                        "no server cores for this driver",
                    ),
                ))
            }
        }
    } else {
        None
    };
    let ack = Frame {
        kind: FrameKind::Hello,
        client_to_server: false,
        session,
        half_round: 0,
        server: 0,
        label: hello.label.clone(),
        payload: vec![mode as u8],
    };
    if let Err(e) = write_frame(stream, &ack, 0, "net-hello") {
        return Err(fail(ctx, metrics, true, e));
    }
    match cores {
        None => relay_session(stream, session, metrics, ctx),
        Some(mut cores) => compute_session(stream, session, &mut cores, metrics, ctx),
    }
    .map(|()| SessionEnd::Completed)
}

/// Answers [`FrameKind::Stats`] requests until the scraper hangs up.
/// Scrapes are best effort and never count as session failures; each
/// answered request bumps `stats_probes`. The request payload selects
/// the format: `[0]` (or empty) = `spfe-metrics/v1` JSON, `[1]` =
/// Prometheus text exposition.
fn stats_session(stream: &mut TcpStream, metrics: &Metrics, first: Frame) -> SessionEnd {
    let mut request = first;
    loop {
        metrics.stats_probe();
        let snap = metrics.snapshot();
        let (label, body) = if request.payload.first() == Some(&1) {
            ("prom", snap.prometheus())
        } else {
            ("json", snap.to_json())
        };
        let reply = Frame {
            kind: FrameKind::Stats,
            client_to_server: false,
            session: request.session,
            half_round: 0,
            server: 0,
            label: label.to_owned(),
            payload: body.into_bytes(),
        };
        if write_frame(stream, &reply, 0, "net-stats").is_err() {
            return SessionEnd::Stats;
        }
        request = match read_frame_or_eof(stream, true, 0, "net-stats") {
            // `--watch` holds the connection and sends further Stats
            // frames; anything else ends the scrape.
            Ok(Some(f)) if f.kind == FrameKind::Stats => f,
            _ => return SessionEnd::Stats,
        };
    }
}

/// Relay mode: echo every Msg frame back verbatim until Bye or EOF.
/// Each received frame is metered once by its *logical* direction flag;
/// the echo is the same logical message and is not counted.
fn relay_session(
    stream: &mut TcpStream,
    session: u64,
    metrics: &Metrics,
    ctx: &Mutex<SessionCtx>,
) -> Result<(), SessionFailure> {
    let mut clock = Lamport::new();
    loop {
        let (frame, carried) = match read_frame_or_eof_traced(stream, true, 0, "net-relay") {
            Ok(None) => return Ok(()),
            Ok(Some(got)) => got,
            Err(e) => return Err(fail(ctx, metrics, false, e)),
        };
        let recv_stamp = clock.observe(carried.unwrap_or(0));
        match frame.kind {
            FrameKind::Msg if frame.session == session => {
                spfe_obs::net_frame_event(
                    false,
                    &frame.label,
                    frame.payload.len() as u64,
                    frame.half_round,
                    recv_stamp,
                );
                metrics.transfer(frame.client_to_server, frame.payload.len() as u64);
                lock_ctx(ctx).flow.observe_msg(&frame);
                let stamp = clock.tick();
                if journal::tracing() {
                    let ctx_frame = Frame::trace_ctx(false, session, frame.half_round, stamp);
                    if let Err(e) =
                        write_frame(stream, &ctx_frame, frame.server as usize, "net-relay")
                    {
                        return Err(fail(ctx, metrics, false, e));
                    }
                    spfe_obs::net_frame_event(
                        true,
                        &frame.label,
                        frame.payload.len() as u64,
                        frame.half_round,
                        stamp,
                    );
                }
                if let Err(e) = write_frame(stream, &frame, frame.server as usize, "net-relay") {
                    return Err(fail(ctx, metrics, false, e));
                }
            }
            FrameKind::Bye => {
                spfe_obs::net_frame_event(false, "net-bye", 0, frame.half_round, recv_stamp);
                lock_ctx(ctx).flow.observe_bye(&frame);
                return Ok(());
            }
            _ => {
                return Err(fail(
                    ctx,
                    metrics,
                    false,
                    abort(
                        stream,
                        session,
                        &frame.label,
                        "unexpected frame in relay session",
                    ),
                ))
            }
        }
    }
}

/// Compute mode: feed each Msg frame to the addressed server core and
/// write its replies back, until every core is consumed (the client sends
/// Bye) or an error tears the session down. Incoming frames meter as
/// client → server traffic, originated replies as server → client.
fn compute_session(
    stream: &mut TcpStream,
    session: u64,
    cores: &mut [Box<dyn SessionCore + Send>],
    metrics: &Metrics,
    ctx: &Mutex<SessionCtx>,
) -> Result<(), SessionFailure> {
    let proto = |ctx: &Mutex<SessionCtx>, e: ProtocolError| fail(ctx, metrics, false, e);
    for core in cores.iter_mut() {
        let (_, outs) = match core.start() {
            Ok(r) => r,
            Err(e) => return Err(proto(ctx, e)),
        };
        if !outs.is_empty() {
            return Err(proto(
                ctx,
                abort(stream, session, "", "server core tried to speak first"),
            ));
        }
    }
    let mut clock = Lamport::new();
    loop {
        let (frame, carried) = match read_frame_or_eof_traced(stream, true, 0, "net-compute") {
            Ok(None) => return Ok(()),
            Ok(Some(got)) => got,
            Err(e) => return Err(proto(ctx, e)),
        };
        let recv_stamp = clock.observe(carried.unwrap_or(0));
        match frame.kind {
            FrameKind::Bye => {
                spfe_obs::net_frame_event(false, "net-bye", 0, frame.half_round, recv_stamp);
                lock_ctx(ctx).flow.observe_bye(&frame);
                return Ok(());
            }
            FrameKind::Msg if frame.session == session => {
                spfe_obs::net_frame_event(
                    false,
                    &frame.label,
                    frame.payload.len() as u64,
                    frame.half_round,
                    recv_stamp,
                );
                metrics.transfer(frame.client_to_server, frame.payload.len() as u64);
                lock_ctx(ctx).flow.observe_msg(&frame);
                let idx = frame.server as usize;
                if idx >= cores.len() {
                    return Err(proto(
                        ctx,
                        abort(
                            stream,
                            session,
                            &frame.label,
                            "message addresses an unknown server",
                        ),
                    ));
                }
                let step =
                    cores[idx].on_message(frame.half_round, idx, &frame.label, &frame.payload);
                let (_, outs) = match step {
                    Ok(r) => r,
                    Err(e) => {
                        let _ = abort(
                            stream,
                            session,
                            &frame.label,
                            "server core rejected the message",
                        );
                        return Err(proto(ctx, e));
                    }
                };
                for m in outs {
                    if m.client_to_server {
                        return Err(proto(
                            ctx,
                            abort(
                                stream,
                                session,
                                m.label,
                                "server core emitted a misdirected message",
                            ),
                        ));
                    }
                    let reply = Frame {
                        kind: FrameKind::Msg,
                        client_to_server: false,
                        session,
                        half_round: frame.half_round + 1,
                        server: m.server as u32,
                        label: m.label.to_owned(),
                        payload: m.payload,
                    };
                    metrics.transfer(false, reply.payload.len() as u64);
                    lock_ctx(ctx).flow.observe_msg(&reply);
                    let stamp = clock.tick();
                    if journal::tracing() {
                        let ctx_frame = Frame::trace_ctx(false, session, reply.half_round, stamp);
                        if let Err(e) = write_frame(stream, &ctx_frame, m.server, m.label) {
                            return Err(proto(ctx, e));
                        }
                        spfe_obs::net_frame_event(
                            true,
                            m.label,
                            reply.payload.len() as u64,
                            reply.half_round,
                            stamp,
                        );
                    }
                    if let Err(e) = write_frame(stream, &reply, m.server, m.label) {
                        return Err(proto(ctx, e));
                    }
                }
            }
            _ => {
                return Err(proto(
                    ctx,
                    abort(
                        stream,
                        session,
                        &frame.label,
                        "unexpected frame in compute session",
                    ),
                ))
            }
        }
    }
}
