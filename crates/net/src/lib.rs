//! # spfe-net
//!
//! The networked SPFE service: a TCP server hosting protocol sessions and
//! a client runner that drives sans-io session cores
//! ([`spfe_transport::SessionCore`]) over real sockets.
//!
//! The layer is deliberately thin — all protocol logic lives in the cores
//! and all metering in [`spfe_transport::Transcript`] — so a networked run
//! is the *same computation* as an in-memory run, with only the byte
//! carrier swapped. DESIGN.md §15 documents the contract; the
//! cross-transport conformance matrix (`tests/net_conformance.rs`) holds
//! it in place.
//!
//! * [`Server`] — a `TcpListener` accept loop with one thread per
//!   session, serving both Hello modes: **relay** (echo every frame; the
//!   blanket adapter that runs all monolithic harness drivers over TCP
//!   unchanged) and **compute** (host the genuine server state machines
//!   from `spfe::harness::net_server_cores`).
//! * [`run_core`] / [`run_driver`] — the client side: drive a
//!   [`spfe_transport::ClientCore`] over a connected stream in the same
//!   phase order as [`spfe_transport::pump`], metering every frame on a
//!   local transcript so digests, per-label comm bytes, and audit
//!   fingerprints are byte-identical to the in-memory run.
//! * **Operational telemetry** (DESIGN.md §16) — every session settles
//!   into a [`spfe_obs::metrics::Metrics`] registry (typed failure
//!   taxonomy, per-driver latency histograms, byte totals), scrapeable
//!   live over the same listener via [`fetch_stats`] /
//!   `spfe-client stats`, with `SPFE_LOG`-gated JSONL session logs on
//!   stderr. The registry's per-driver byte and half-round totals match
//!   the client-side transcripts *exactly* — the conformance contract
//!   `tests/net_metrics.rs` pins down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod server;

pub use client::{
    fetch_stats, next_session_id, run_core, run_driver, run_driver_relay, NetRun, StatsConn,
};
pub use server::{classify_failure, Server, ServerConfig};
