//! The networked client runner: drives a sans-io [`ClientCore`] over a
//! connected stream, metering every frame on a local [`Transcript`].
//!
//! [`run_core`] delivers messages in the same phase order as
//! [`spfe_transport::pump`] — every client → server message of a burst,
//! then the server replies in arrival order (which, over one ordered
//! stream and a sequential peer, is server order) — so the metered
//! transcript, and hence the digest, per-label byte totals, and the
//! `spfe-view/v1` fingerprints, are byte-identical to the in-memory run
//! of the same core and to the monolithic driver.
//!
//! [`run_driver`] is the convenience entry point the `spfe-client` binary
//! and the conformance matrix use: it looks the driver up in
//! `spfe::harness`, picks compute mode when the driver has an extracted
//! core and relay mode otherwise, and returns the digest plus the
//! client-side transcript.

use spfe::harness;
use spfe_obs::trace as journal;
use spfe_transport::frame::{read_frame, read_frame_traced, write_frame};
use spfe_transport::{
    Channel, ClientCore, Direction, Frame, FrameKind, Lamport, ProtocolError, SessionMode,
    SessionState, SocketChannel, Transcript,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A fresh process-unique session identifier.
pub fn next_session_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The result of one networked driver run.
#[derive(Debug)]
pub struct NetRun {
    /// The protocol digest (same convention as the harness driver table).
    pub digest: u64,
    /// The client-side metered transcript.
    pub transcript: Transcript,
    /// The mode the session ran in.
    pub mode: SessionMode,
}

fn invalid(reason: &'static str) -> ProtocolError {
    ProtocolError::InvalidMessage {
        label: "net-msg",
        reason,
    }
}

/// Drives `core` over `stream` in compute mode: handshake, burst-wise
/// message exchange, Bye. Returns the digest and the metered transcript.
///
/// # Errors
///
/// Any transport, framing, or core [`ProtocolError`]; a read deadline on
/// the stream surfaces as [`ProtocolError::Timeout`].
pub fn run_core<S: Read + Write>(
    mut stream: S,
    driver: &str,
    core: &mut dyn ClientCore,
    num_servers: usize,
    session: u64,
) -> Result<(u64, Transcript), ProtocolError> {
    let hello = Frame {
        kind: FrameKind::Hello,
        client_to_server: true,
        session,
        half_round: 0,
        server: 0,
        label: driver.to_owned(),
        payload: vec![SessionMode::Compute as u8],
    };
    write_frame(&mut stream, &hello, 0, "net-hello")?;
    let ack = read_frame(&mut stream, 0, "net-hello")?;
    if ack.kind == FrameKind::Error {
        return Err(ProtocolError::InvalidMessage {
            label: "net-hello",
            reason: "peer rejected the session",
        });
    }
    if ack.kind != FrameKind::Hello || ack.session != session {
        return Err(ProtocolError::InvalidMessage {
            label: "net-hello",
            reason: "malformed hello acknowledgement",
        });
    }
    spfe_obs::net_session_event(true, session, driver, SessionMode::Compute as u8);
    let mut transcript = Transcript::new(num_servers);
    let mut clock = Lamport::new();
    let (mut state, mut outbox) = core.start()?;
    let mut expected = 0usize;
    while !(state == SessionState::Done && outbox.is_empty() && expected == 0) {
        // Burst-send everything the core queued, in emission order.
        for m in outbox.drain(..) {
            if !m.client_to_server || m.server >= num_servers {
                return Err(invalid("client core emitted a misdirected message"));
            }
            transcript.record_raw(
                Direction::ClientToServer(m.server),
                m.label,
                m.payload.len(),
            );
            let frame = Frame::msg(
                true,
                session,
                transcript.report().half_rounds,
                m.server,
                m.label,
                m.payload,
            );
            let stamp = clock.tick();
            if journal::tracing() {
                let ctx = Frame::trace_ctx(true, session, frame.half_round, stamp);
                write_frame(&mut stream, &ctx, m.server, m.label)?;
                spfe_obs::net_frame_event(
                    true,
                    m.label,
                    frame.payload.len() as u64,
                    frame.half_round,
                    stamp,
                );
            }
            write_frame(&mut stream, &frame, m.server, m.label)?;
            expected += 1;
        }
        if state == SessionState::Done && expected == 0 {
            break;
        }
        if expected == 0 {
            return Err(invalid("session stalled: no messages in flight"));
        }
        // One reply per delivered message in this protocol family.
        let (frame, carried) = read_frame_traced(&mut stream, 0, "net-msg")?;
        let recv_stamp = clock.observe(carried.unwrap_or(0));
        expected -= 1;
        match frame.kind {
            FrameKind::Msg if frame.session == session => {
                let server = frame.server as usize;
                if server >= num_servers {
                    return Err(invalid("reply from an unknown server"));
                }
                let label = core
                    .static_label(&frame.label)
                    .ok_or_else(|| invalid("reply label is foreign to this protocol"))?;
                spfe_obs::net_frame_event(
                    false,
                    label,
                    frame.payload.len() as u64,
                    frame.half_round,
                    recv_stamp,
                );
                transcript.record_raw(
                    Direction::ServerToClient(server),
                    label,
                    frame.payload.len(),
                );
                let (s, outs) = core.on_message(
                    transcript.report().half_rounds,
                    server,
                    &frame.label,
                    &frame.payload,
                )?;
                state = s;
                outbox.extend(outs);
            }
            FrameKind::Error => return Err(invalid("server aborted the session")),
            _ => return Err(invalid("unexpected frame from server")),
        }
    }
    let bye = Frame {
        kind: FrameKind::Bye,
        client_to_server: true,
        session,
        half_round: transcript.report().half_rounds,
        server: 0,
        label: String::new(),
        payload: Vec::new(),
    };
    let stamp = clock.tick();
    if journal::tracing() {
        let ctx = Frame::trace_ctx(true, session, bye.half_round, stamp);
        let _ = write_frame(&mut stream, &ctx, 0, "net-bye");
        spfe_obs::net_frame_event(true, "net-bye", 0, bye.half_round, stamp);
    }
    let _ = write_frame(&mut stream, &bye, 0, "net-bye");
    spfe_obs::net_session_event(false, session, driver, SessionMode::Compute as u8);
    let digest = core
        .digest()
        .ok_or_else(|| invalid("client core finished without a digest"))?;
    Ok((digest, transcript))
}

/// Runs harness driver `name` over TCP in relay mode: the monolithic
/// driver plays both parties locally, every message crossing the wire
/// through the echoing peer.
///
/// # Errors
///
/// Any [`ProtocolError`] from the handshake, the transport, or the
/// driver itself.
pub fn run_driver_relay(
    addr: &str,
    d: &harness::Driver,
    deadline: Option<Duration>,
) -> Result<NetRun, ProtocolError> {
    let stream = connect(addr, deadline)?;
    let mut ch = SocketChannel::connect(
        stream,
        d.servers,
        d.name,
        SessionMode::Relay,
        next_session_id(),
    )?;
    let digest = (d.run)(&mut ch)?;
    ch.bye();
    Ok(NetRun {
        digest,
        transcript: ch.transcript().clone(),
        mode: SessionMode::Relay,
    })
}

/// Runs harness driver `name` over TCP: compute mode when the driver has
/// an extracted sans-io core, relay mode otherwise.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] for an unknown driver name, else as
/// [`run_core`] / [`run_driver_relay`].
pub fn run_driver(
    addr: &str,
    name: &str,
    deadline: Option<Duration>,
) -> Result<NetRun, ProtocolError> {
    let drivers = harness::drivers();
    let d = drivers
        .iter()
        .find(|d| d.name == name)
        .ok_or(ProtocolError::InvalidMessage {
            label: "net-hello",
            reason: "unknown driver name",
        })?;
    match harness::net_client_core(name) {
        Some(mut core) => {
            let stream = connect(addr, deadline)?;
            let (digest, transcript) =
                run_core(stream, name, core.as_mut(), d.servers, next_session_id())?;
            Ok(NetRun {
                digest,
                transcript,
                mode: SessionMode::Compute,
            })
        }
        None => run_driver_relay(addr, d, deadline),
    }
}

/// A held-open metrics scrape connection (one TCP connect amortized
/// over many probes — what `spfe-client stats --watch` uses).
///
/// Each [`StatsConn::fetch`] sends one [`FrameKind::Stats`] request and
/// returns the rendered snapshot; the server answers on the same
/// connection until it is dropped.
#[derive(Debug)]
pub struct StatsConn {
    stream: TcpStream,
    session: u64,
}

impl StatsConn {
    /// Connects to a running `spfe-server` for scraping.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::ServerCrashed`] when the connect fails, else any
    /// socket-configuration error.
    pub fn connect(addr: &str, deadline: Option<Duration>) -> Result<StatsConn, ProtocolError> {
        Ok(StatsConn {
            stream: connect(addr, deadline)?,
            session: next_session_id(),
        })
    }

    /// Fetches one snapshot: Prometheus text exposition when `prom`,
    /// `spfe-metrics/v1` JSON otherwise.
    ///
    /// # Errors
    ///
    /// Any transport error, or [`ProtocolError::InvalidMessage`] when the
    /// peer answers with anything but a UTF-8 Stats frame.
    pub fn fetch(&mut self, prom: bool) -> Result<String, ProtocolError> {
        let request = Frame {
            kind: FrameKind::Stats,
            client_to_server: true,
            session: self.session,
            half_round: 0,
            server: 0,
            label: "stats".to_owned(),
            payload: vec![u8::from(prom)],
        };
        write_frame(&mut self.stream, &request, 0, "net-stats")?;
        let reply = read_frame(&mut self.stream, 0, "net-stats")?;
        if reply.kind != FrameKind::Stats {
            return Err(ProtocolError::InvalidMessage {
                label: "net-stats",
                reason: "peer did not answer the stats request",
            });
        }
        String::from_utf8(reply.payload).map_err(|_| ProtocolError::InvalidMessage {
            label: "net-stats",
            reason: "stats payload is not UTF-8",
        })
    }
}

/// One-shot metrics scrape: connect, fetch one snapshot, hang up.
///
/// # Errors
///
/// As [`StatsConn::connect`] / [`StatsConn::fetch`].
pub fn fetch_stats(
    addr: &str,
    prom: bool,
    deadline: Option<Duration>,
) -> Result<String, ProtocolError> {
    StatsConn::connect(addr, deadline)?.fetch(prom)
}

fn connect(addr: &str, deadline: Option<Duration>) -> Result<TcpStream, ProtocolError> {
    let stream =
        TcpStream::connect(addr).map_err(|_| ProtocolError::ServerCrashed { server: 0 })?;
    stream
        .set_read_timeout(deadline)
        .and_then(|()| stream.set_write_timeout(deadline))
        .map_err(|_| ProtocolError::InvalidMessage {
            label: "net-hello",
            reason: "could not configure socket deadlines",
        })?;
    Ok(stream)
}
