//! The SPFE session server binary.
//!
//! ```text
//! spfe-server [--addr HOST] [--port PORT] [--read-deadline-ms MS]
//!             [--metrics-json PATH] [--trace PATH]
//! ```
//!
//! Binds `HOST:PORT` (default `127.0.0.1:0` — an ephemeral port), prints
//! a single `listening on <addr>` line to stdout (the CI smoke stage
//! parses it), then serves sessions until stdin reaches EOF or a line
//! reading `quit` arrives, at which point it shuts down gracefully and
//! prints the session counters (with a per-kind failure breakdown when
//! anything failed). With `--metrics-json PATH` the final
//! `spfe-metrics/v1` snapshot is also written to `PATH` — the artifact
//! CI uploads. Set `SPFE_LOG=1` for per-session JSONL logs on stderr;
//! a live snapshot is always scrapeable via `spfe-client stats`.
//!
//! `--trace PATH` turns the server's trace journal on for the process
//! lifetime and writes it as a Perfetto JSON timeline at shutdown: one
//! span per served session tagged `(session, driver, mode)` plus a
//! Lamport-stamped instant per wire send/receive (DESIGN.md §17). Merge
//! it with a client capture via `spfe-tables net-trace`.

use spfe_net::{Server, ServerConfig};
use spfe_obs::metrics::FailureKind;
use std::io::BufRead;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: spfe-server [--addr HOST] [--port PORT] [--read-deadline-ms MS] \
         [--metrics-json PATH] [--trace PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut host = "127.0.0.1".to_owned();
    let mut port = 0u16;
    let mut deadline_ms = 30_000u64;
    let mut metrics_json: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--addr" => {
                host = value(i);
                i += 2;
            }
            "--port" => {
                port = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--read-deadline-ms" => {
                deadline_ms = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--metrics-json" => {
                metrics_json = Some(value(i));
                i += 2;
            }
            "--trace" => {
                trace_path = Some(value(i));
                i += 2;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if trace_path.is_some() {
        spfe_obs::trace::set_tracing(true);
    }
    let config = ServerConfig {
        read_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        inject_panic_driver: None,
    };
    let mut server = match Server::bind(&format!("{host}:{port}"), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("spfe-server: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    // Serve until the controller closes stdin or says quit. This keeps
    // shutdown portable (no signal handling) and scriptable from CI.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    server.shutdown();
    let snapshot = server.snapshot();
    println!(
        "sessions opened={} completed={} failed={}",
        snapshot.sessions_opened,
        snapshot.sessions_completed,
        snapshot.sessions_failed()
    );
    if snapshot.sessions_failed() > 0 {
        let breakdown: Vec<String> = FailureKind::ALL
            .iter()
            .filter(|k| snapshot.failure(**k) > 0)
            .map(|k| format!("{}={}", k.name(), snapshot.failure(*k)))
            .collect();
        println!("failures {}", breakdown.join(" "));
    }
    if let Some(path) = metrics_json {
        if let Err(e) = std::fs::write(&path, snapshot.to_json()) {
            eprintln!("spfe-server: writing {path} failed: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = trace_path {
        // Session threads have exited by now (shutdown joins them), so
        // their per-thread journals have all flushed to the sink.
        let trace = spfe_obs::trace::take();
        if let Err(e) = std::fs::write(&path, spfe_obs::export::perfetto_json(&trace)) {
            eprintln!("spfe-server: writing {path} failed: {e}");
            std::process::exit(1);
        }
    }
}
