//! The SPFE network client binary.
//!
//! ```text
//! spfe-client [run] --addr HOST:PORT [--deadline-ms MS] [--trace PATH] TARGET...
//! spfe-client stats --addr HOST:PORT [--prom] [--watch] [--interval-ms MS] [--count N]
//! ```
//!
//! Each `TARGET` is either a harness driver name (`xor2`, `hom_pir`, …)
//! or an experiment id from the audit table (`e1`, `e2`, `e11`, …),
//! which expands to that experiment's driver list. Every driver runs
//! over TCP — compute mode when it has an extracted sans-io core, relay
//! mode otherwise — and its digest is checked against the driver table's
//! expected value. Exit status is 0 only if every run completed with the
//! right digest; on failure the exit summary breaks the failures down by
//! [`FailureKind`]. Set `SPFE_LOG=1` for per-run JSONL log lines on
//! stderr, mirroring the server's session logs. The leading `run`
//! keyword is optional and names the default subcommand.
//!
//! `--trace PATH` turns the client's trace journal on for the whole run
//! and writes it as a Perfetto JSON timeline on exit: per-session slices
//! plus one Lamport-stamped instant per wire send/receive (DESIGN.md
//! §17). Pair it with `spfe-server --trace` and merge the two files with
//! `spfe-tables net-trace` for a cross-process timeline.
//!
//! The `stats` subcommand scrapes the live metrics endpoint of a running
//! `spfe-server`: `spfe-metrics/v1` JSON by default, Prometheus text
//! exposition with `--prom`. `--watch` keeps one connection open and
//! re-fetches every `--interval-ms` (default 1000) until interrupted or
//! `--count` snapshots have been printed; when the server restarts
//! between probes (uptime or session counters regress, or the held-open
//! connection drops), the watcher prints a reset notice and reconnects
//! instead of aborting the watch.

use spfe::harness;
use spfe_bench::audit::AUDIT_GROUPS;
use spfe_net::{classify_failure, run_driver, StatsConn};
use spfe_obs::metrics::{epoch_micros, FailureKind, Metrics, SessionLogRecord, SessionUsage};
use spfe_transport::SessionMode;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: spfe-client [run] --addr HOST:PORT [--deadline-ms MS] [--trace PATH] TARGET..."
    );
    eprintln!("       spfe-client stats --addr HOST:PORT [--prom] [--watch] [--interval-ms MS] [--count N]");
    eprintln!("  TARGET: a driver name (xor2, hom_pir, ...) or an experiment id (e1, e2, ...)");
    eprintln!("  --trace PATH: write the client trace journal as a Perfetto JSON timeline");
    std::process::exit(2);
}

fn expand(target: &str) -> Vec<String> {
    if let Some((_, group)) = AUDIT_GROUPS.iter().find(|(id, _)| *id == target) {
        return group.iter().map(|d| (*d).to_owned()).collect();
    }
    vec![target.to_owned()]
}

/// The restart-detection marks of one scrape: `(uptime_micros,
/// sessions_opened)`. Both only ever grow within one server process, so
/// either regressing between two probes means the process was replaced.
fn watch_marks(body: &str, prom: bool) -> Option<(u64, u64)> {
    if prom {
        let mut uptime = None;
        let mut opened = None;
        for line in body.lines() {
            if let Some(v) = line.strip_prefix("spfe_uptime_seconds ") {
                uptime = v.trim().parse::<f64>().ok().map(|s| (s * 1e6) as u64);
            } else if let Some(v) = line.strip_prefix("spfe_sessions_opened_total ") {
                opened = v.trim().parse::<u64>().ok();
            }
        }
        Some((uptime?, opened?))
    } else {
        let snap = spfe_obs::metrics::parse_snapshot(body).ok()?;
        Some((snap.uptime_micros, snap.sessions_opened))
    }
}

/// `spfe-client stats ...`: scrape the live metrics endpoint.
fn stats_main(args: &[String]) -> ! {
    let mut addr: Option<String> = None;
    let mut deadline_ms = 30_000u64;
    let mut prom = false;
    let mut watch = false;
    let mut interval_ms = 1_000u64;
    let mut count = 0u64;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--addr" => {
                addr = Some(value(i));
                i += 2;
            }
            "--deadline-ms" => {
                deadline_ms = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--interval-ms" => {
                interval_ms = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--count" => {
                count = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--prom" => {
                prom = true;
                i += 1;
            }
            "--watch" => {
                watch = true;
                i += 1;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let addr = addr.unwrap_or_else(|| usage());
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    let limit = if count > 0 {
        count
    } else if watch {
        u64::MAX
    } else {
        1
    };
    let mut conn = match StatsConn::connect(&addr, deadline) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("spfe-client: stats connect failed: {e}");
            std::process::exit(1);
        }
    };
    let mut fetched = 0u64;
    let mut last_marks: Option<(u64, u64)> = None;
    while fetched < limit {
        if fetched > 0 {
            std::thread::sleep(Duration::from_millis(interval_ms));
        }
        match conn.fetch(prom) {
            Ok(body) => {
                // A server restart resets the registry: uptime or the
                // opened counter stepping backwards between two probes is
                // a new process, not drift — note it and keep watching.
                if watch {
                    if let Some(marks) = watch_marks(&body, prom) {
                        if let Some((last_uptime, last_opened)) = last_marks {
                            if marks.0 < last_uptime || marks.1 < last_opened {
                                eprintln!(
                                    "spfe-client: server restart detected \
                                     (uptime or session counters regressed); counters reset"
                                );
                            }
                        }
                        last_marks = Some(marks);
                    }
                }
                use std::io::Write;
                let mut out = std::io::stdout().lock();
                // A closed pipe (e.g. `... | head`) ends the scrape
                // cleanly; println! would panic on it.
                if writeln!(out, "{body}").and_then(|()| out.flush()).is_err() {
                    std::process::exit(0);
                }
            }
            Err(e) if watch => {
                // The held-open connection died — the usual sign the
                // server went away mid-watch. Reconnect once; only a
                // failed reconnect ends the watch.
                match StatsConn::connect(&addr, deadline) {
                    Ok(c) => {
                        eprintln!(
                            "spfe-client: stats connection dropped ({e}); \
                             server restart detected, reconnected"
                        );
                        conn = c;
                        continue;
                    }
                    Err(e2) => {
                        eprintln!("spfe-client: stats fetch failed: {e}; reconnect failed: {e2}");
                        std::process::exit(1);
                    }
                }
            }
            Err(e) => {
                eprintln!("spfe-client: stats fetch failed: {e}");
                std::process::exit(1);
            }
        }
        fetched += 1;
    }
    std::process::exit(0);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("stats") {
        stats_main(&args[1..]);
    }
    // `run` is the default subcommand; the bare form stays valid.
    if args.first().map(String::as_str) == Some("run") {
        args.remove(0);
    }
    let mut addr: Option<String> = None;
    let mut deadline_ms = 30_000u64;
    let mut trace_path: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--addr" => {
                addr = Some(value(i));
                i += 2;
            }
            "--deadline-ms" => {
                deadline_ms = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--trace" => {
                trace_path = Some(value(i));
                i += 2;
            }
            "--help" | "-h" => usage(),
            other => {
                targets.push(other.to_owned());
                i += 1;
            }
        }
    }
    let addr = addr.unwrap_or_else(|| usage());
    if targets.is_empty() {
        usage();
    }
    if trace_path.is_some() {
        spfe_obs::trace::set_tracing(true);
    }
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    let drivers = harness::drivers();
    // A client-side registry mirroring the server's: the same taxonomy
    // (plus digest mismatches, which only the client can detect) and the
    // same per-driver aggregates, so both ends of a run can be compared.
    let metrics = Metrics::new();
    for target in &targets {
        for name in expand(target) {
            let expect = match drivers.iter().find(|d| d.name == name) {
                Some(d) => d.expect,
                None => {
                    eprintln!("FAIL {name}: unknown driver");
                    metrics.session_opened();
                    metrics.session_closed(
                        &name,
                        "client",
                        Err(FailureKind::ProtocolError),
                        SessionUsage::default(),
                    );
                    continue;
                }
            };
            metrics.session_opened();
            let start = Instant::now();
            let run = run_driver(&addr, &name, deadline);
            let wall_micros = start.elapsed().as_micros() as u64;
            let (mode, outcome, usage) = match &run {
                Ok(r) => {
                    let rep = r.transcript.report();
                    let mode = match r.mode {
                        SessionMode::Compute => "compute",
                        SessionMode::Relay => "relay",
                    };
                    let usage = SessionUsage {
                        bytes_in: rep.client_to_server,
                        bytes_out: rep.server_to_client,
                        frames_in: 0,
                        frames_out: 0,
                        half_rounds: u64::from(rep.half_rounds),
                        wall_micros,
                    };
                    let outcome = if r.digest == expect {
                        Ok(())
                    } else {
                        Err(FailureKind::DigestMismatch)
                    };
                    (mode, outcome, usage)
                }
                Err(e) => {
                    let usage = SessionUsage {
                        wall_micros,
                        ..SessionUsage::default()
                    };
                    ("client", Err(classify_failure(false, e)), usage)
                }
            };
            metrics.session_closed(&name, mode, outcome, usage);
            SessionLogRecord {
                seq: spfe_obs::metrics::next_log_seq(),
                ts_micros: epoch_micros(),
                session: 0,
                peer: &addr,
                driver: &name,
                mode,
                outcome: match outcome {
                    Ok(()) => "ok",
                    Err(kind) => kind.name(),
                },
                wall_micros: usage.wall_micros,
                bytes_in: usage.bytes_in,
                bytes_out: usage.bytes_out,
                half_rounds: usage.half_rounds,
            }
            .emit();
            match run {
                Ok(run) if run.digest == expect => {
                    let rep = run.transcript.report();
                    println!(
                        "ok {name} mode={mode} digest={} bytes={} half_rounds={}",
                        run.digest,
                        rep.total_bytes(),
                        rep.half_rounds
                    );
                }
                Ok(run) => {
                    eprintln!("FAIL {name}: digest {} != expected {expect}", run.digest);
                }
                Err(e) => {
                    eprintln!("FAIL {name}: {e}");
                }
            }
        }
    }
    // Write the trace journal before settling the exit status so failed
    // runs still leave a timeline to debug with.
    if let Some(path) = &trace_path {
        let trace = spfe_obs::trace::take();
        if let Err(e) = std::fs::write(path, spfe_obs::export::perfetto_json(&trace)) {
            eprintln!("spfe-client: could not write trace to {path}: {e}");
            std::process::exit(1);
        }
    }
    let failed = metrics.sessions_failed();
    if failed > 0 {
        let snapshot = metrics.snapshot();
        let breakdown: Vec<String> = FailureKind::ALL
            .iter()
            .filter(|k| snapshot.failure(**k) > 0)
            .map(|k| format!("{}={}", k.name(), snapshot.failure(*k)))
            .collect();
        eprintln!("{failed} failure(s): {}", breakdown.join(" "));
        std::process::exit(1);
    }
}
