//! The SPFE network client binary.
//!
//! ```text
//! spfe-client --addr HOST:PORT [--deadline-ms MS] TARGET...
//! ```
//!
//! Each `TARGET` is either a harness driver name (`xor2`, `hom_pir`, …)
//! or an experiment id from the audit table (`e1`, `e2`, `e11`, …),
//! which expands to that experiment's driver list. Every driver runs
//! over TCP — compute mode when it has an extracted sans-io core, relay
//! mode otherwise — and its digest is checked against the driver table's
//! expected value. Exit status is 0 only if every run completed with the
//! right digest.

use spfe::harness;
use spfe_bench::audit::AUDIT_GROUPS;
use spfe_net::run_driver;
use spfe_transport::SessionMode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: spfe-client --addr HOST:PORT [--deadline-ms MS] TARGET...");
    eprintln!("  TARGET: a driver name (xor2, hom_pir, ...) or an experiment id (e1, e2, ...)");
    std::process::exit(2);
}

fn expand(target: &str) -> Vec<String> {
    if let Some((_, group)) = AUDIT_GROUPS.iter().find(|(id, _)| *id == target) {
        return group.iter().map(|d| (*d).to_owned()).collect();
    }
    vec![target.to_owned()]
}

fn main() {
    let mut addr: Option<String> = None;
    let mut deadline_ms = 30_000u64;
    let mut targets: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--addr" => {
                addr = Some(value(i));
                i += 2;
            }
            "--deadline-ms" => {
                deadline_ms = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--help" | "-h" => usage(),
            other => {
                targets.push(other.to_owned());
                i += 1;
            }
        }
    }
    let addr = addr.unwrap_or_else(|| usage());
    if targets.is_empty() {
        usage();
    }
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    let drivers = harness::drivers();
    let mut failures = 0u32;
    for target in &targets {
        for name in expand(target) {
            let expect = match drivers.iter().find(|d| d.name == name) {
                Some(d) => d.expect,
                None => {
                    eprintln!("FAIL {name}: unknown driver");
                    failures += 1;
                    continue;
                }
            };
            match run_driver(&addr, &name, deadline) {
                Ok(run) if run.digest == expect => {
                    let rep = run.transcript.report();
                    let mode = match run.mode {
                        SessionMode::Compute => "compute",
                        SessionMode::Relay => "relay",
                    };
                    println!(
                        "ok {name} mode={mode} digest={} bytes={} half_rounds={}",
                        run.digest,
                        rep.total_bytes(),
                        rep.half_rounds
                    );
                }
                Ok(run) => {
                    eprintln!("FAIL {name}: digest {} != expected {expect}", run.digest);
                    failures += 1;
                }
                Err(e) => {
                    eprintln!("FAIL {name}: {e}");
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} failure(s)");
        std::process::exit(1);
    }
}
