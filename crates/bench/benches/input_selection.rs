//! E4 + E5 — the three §3.3 input-selection protocols across m.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spfe::core::input_select;
use spfe::transport::Transcript;
use spfe_bench::{field_for, make_db, make_indices, Bench};
use std::hint::black_box;

fn bench_input_selection(c: &mut Criterion) {
    let mut b = Bench::new();
    let n = 1_024;
    let db = make_db(n, 500);
    let field = field_for(n, 16, 500);
    let mut group = c.benchmark_group("input_selection");
    group.sample_size(10);

    for m in [4usize, 16] {
        let indices = make_indices(n, m);
        group.bench_with_input(BenchmarkId::new("select1", m), &m, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(1);
                black_box(input_select::select1(
                    &mut t, &b.group, &b.pk, &b.sk, &db, &indices, field, &mut b.rng,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("select2_v1", m), &m, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(1);
                black_box(input_select::select2_v1(
                    &mut t, &b.group, &b.pk, &b.sk, &db, &indices, field, &mut b.rng,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("select2_v2", m), &m, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(1);
                black_box(input_select::select2_v2(
                    &mut t, &b.group, &b.pk, &b.sk, &b.spk, &b.ssk, &db, &indices, field,
                    &mut b.rng,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("select3", m), &m, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(1);
                black_box(input_select::select3(
                    &mut t, &b.group, &b.pk, &b.sk, &b.spk, &b.ssk, &db, &indices, 16, &mut b.rng,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_input_selection);
criterion_main!(benches);
