//! E3 — PSM protocols (§3.2): sum-PSM, Yao-PSM, BP-PSM, and the complete
//! PSM-based SPFE.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spfe::circuits::builders::sum_circuit;
use spfe::circuits::BranchingProgram;
use spfe::core::psm_spfe;
use spfe::math::Fp64;
use spfe::mpc::psm;
use spfe::pir::poly_it::PolyItParams;
use spfe::transport::Transcript;
use spfe_bench::{make_db, make_indices, Bench};
use std::hint::black_box;

fn bench_psm_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("psm_primitives");
    let seed = [7u8; 32];

    group.bench_function("sum_psm_m8", |bench| {
        bench.iter(|| {
            let msgs: Vec<u64> = (0..8)
                .map(|j| psm::sum::player_message(j, 8, j as u64 * 3, 1 << 20, seed))
                .collect();
            black_box(psm::sum::referee(&msgs, 1 << 20))
        })
    });

    let circuit = sum_circuit(4, 8);
    group.bench_function("yao_psm_garble_m4", |bench| {
        bench.iter(|| black_box(psm::yao::p0_message(&circuit, seed)))
    });

    let f = Fp64::new(1_000_003).unwrap();
    let bp = BranchingProgram::parity(6);
    group.bench_function("bp_psm_parity6", |bench| {
        bench.iter(|| {
            let rand = psm::bp::common_randomness(&bp, 6, f, seed);
            let mut msgs = vec![psm::bp::p0_message(&bp, f, &rand)];
            for j in 0..6 {
                msgs.push(psm::bp::player_message(
                    &bp,
                    f,
                    &rand,
                    j,
                    &[(j, j % 2 == 0)],
                ));
            }
            black_box(psm::bp::referee(&bp, f, &msgs))
        })
    });
    group.finish();
}

fn bench_psm_spfe(c: &mut Criterion) {
    let mut b = Bench::new();
    let mut group = c.benchmark_group("psm_spfe");
    group.sample_size(10);
    for n in [256usize, 1_024] {
        let db = make_db(n, 256);
        let indices = make_indices(n, 4);
        let circuit = sum_circuit(4, 8);
        group.bench_with_input(BenchmarkId::new("yao_psm_n", n), &n, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(1);
                black_box(psm_spfe::run_yao_psm(
                    &mut t, &b.group, &b.pk, &b.sk, &db, &indices, &circuit, 8, &mut b.rng,
                ))
            })
        });
    }

    // The perfectly secure multi-server variants.
    let n = 1_024;
    let field = Fp64::at_least(1 << 20);
    let db = make_db(n, 1_000);
    let indices = make_indices(n, 4);
    let params = PolyItParams::new(n, 1, field);
    let k = params.num_servers();
    group.bench_function("sum_psm_multiserver", |bench| {
        bench.iter(|| {
            let mut t = Transcript::new(k);
            black_box(psm_spfe::run_sum_psm(
                &mut t, &params, &db, &indices, 0xAB, &mut b.rng,
            ))
        })
    });

    let bool_db: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
    let bp = BranchingProgram::and_of(4);
    group.bench_function("bp_psm_multiserver", |bench| {
        bench.iter(|| {
            let mut t = Transcript::new(k);
            black_box(psm_spfe::run_bp_psm(
                &mut t, &params, &bp, &bool_db, &indices, 0xCD, &mut b.rng,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_psm_primitives, bench_psm_spfe);
criterion_main!(benches);
