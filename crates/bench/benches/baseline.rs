//! E9 — the linear baselines: buy-the-database and generic Yao over the
//! whole database, versus the sublinear weighted-sum protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spfe::core::{baseline, stats, Statistic};
use spfe::transport::Transcript;
use spfe_bench::{field_for, make_db, make_indices, Bench};
use std::hint::black_box;

fn bench_crossover(c: &mut Criterion) {
    let mut b = Bench::new();
    let m = 4;
    let mut group = c.benchmark_group("crossover");
    group.sample_size(10);
    for n in [256usize, 1_024, 4_096] {
        let db = make_db(n, 60);
        let indices = make_indices(n, m);
        let field = field_for(n, m, 60);

        group.bench_with_input(BenchmarkId::new("spfe_weighted_sum", n), &n, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(1);
                black_box(stats::weighted_sum(
                    &mut t,
                    &b.group,
                    &b.pk,
                    &b.sk,
                    &db,
                    &indices,
                    &[1, 1, 1, 1],
                    field,
                    &mut b.rng,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("buy_database", n), &n, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(1);
                black_box(baseline::buy_the_database(
                    &mut t,
                    &db,
                    &indices,
                    &Statistic::Sum,
                ))
            })
        });
    }
    // Generic Yao only at small n (it is the Ω(n) strawman).
    for n in [64usize, 256] {
        let db = make_db(n, 60);
        let indices = make_indices(n, m);
        group.bench_with_input(BenchmarkId::new("generic_yao", n), &n, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(1);
                black_box(baseline::generic_yao(
                    &mut t,
                    &b.group,
                    &db,
                    &indices,
                    6,
                    &Statistic::Sum,
                    &mut b.rng,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
