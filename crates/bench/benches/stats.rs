//! E6 + E7 + E8 — the §4 statistical protocols.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spfe::core::{input_select, stats};
use spfe::transport::Transcript;
use spfe_bench::{field_for, make_db, make_indices, Bench};
use std::hint::black_box;

fn bench_weighted_sum(c: &mut Criterion) {
    let mut b = Bench::new();
    let m = 4;
    let weights = [1u64, 2, 3, 4];
    let mut group = c.benchmark_group("weighted_sum");
    group.sample_size(10);
    for n in [1_024usize, 4_096, 16_384] {
        let db = make_db(n, 1_000);
        let indices = make_indices(n, m);
        let field = field_for(n, 10 * m, 1_000);
        group.bench_with_input(BenchmarkId::new("n", n), &n, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(1);
                black_box(stats::weighted_sum(
                    &mut t, &b.group, &b.pk, &b.sk, &db, &indices, &weights, field, &mut b.rng,
                ))
            })
        });
    }
    group.finish();
}

fn bench_package(c: &mut Criterion) {
    let mut b = Bench::new();
    let n = 2_048;
    let m = 4;
    let db = make_db(n, 300);
    let sq: Vec<u64> = db.iter().map(|&v| v * v).collect();
    let indices = make_indices(n, m);
    let field = field_for(n, m, 90_000);
    let mut group = c.benchmark_group("avg_var");
    group.sample_size(10);
    group.bench_function("package", |bench| {
        bench.iter(|| {
            let mut t = Transcript::new(1);
            black_box(stats::average_and_variance(
                &mut t, &b.group, &b.pk, &b.sk, &db, &sq, &indices, field, &mut b.rng,
            ))
        })
    });
    group.bench_function("two_runs", |bench| {
        bench.iter(|| {
            let mut t = Transcript::new(1);
            let w = vec![1u64; m];
            black_box(
                stats::weighted_sum(
                    &mut t, &b.group, &b.pk, &b.sk, &db, &indices, &w, field, &mut b.rng,
                )
                .unwrap(),
            );
            black_box(
                stats::weighted_sum(
                    &mut t, &b.group, &b.pk, &b.sk, &sq, &indices, &w, field, &mut b.rng,
                )
                .unwrap(),
            );
        })
    });
    group.finish();
}

fn bench_frequency(c: &mut Criterion) {
    let mut b = Bench::new();
    let n = 1_024;
    let db = make_db(n, 50);
    let field = field_for(n, 16, 50);
    let keyword = db[7];
    let mut group = c.benchmark_group("frequency");
    group.sample_size(10);
    for m in [4usize, 16] {
        let indices = make_indices(n, m);
        group.bench_with_input(BenchmarkId::new("m", m), &m, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(1);
                let shares = input_select::select1(
                    &mut t, &b.group, &b.pk, &b.sk, &db, &indices, field, &mut b.rng,
                )
                .unwrap();
                black_box(stats::frequency(
                    &mut t, &b.pk, &b.sk, &shares, keyword, &mut b.rng,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_weighted_sum, bench_package, bench_frequency);
criterion_main!(benches);
