//! E10 — the (S)PIR substrate: single vs batched retrieval, plus the
//! information-theoretic schemes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spfe::math::{Fp64, XorShiftRng};
use spfe::pir::poly_it::{self, PolyItParams};
use spfe::pir::{batched, spir, xor2, SpirParams};
use spfe::transport::Transcript;
use spfe_bench::{make_db, make_indices, Bench};
use std::hint::black_box;

fn bench_single_spir_scaling(c: &mut Criterion) {
    let mut b = Bench::new();
    let mut group = c.benchmark_group("spir_single");
    group.sample_size(10);
    for n in [256usize, 1_024, 4_096] {
        let db = make_db(n, 1_000);
        let params = SpirParams::new(b.group.clone(), n);
        group.bench_with_input(BenchmarkId::new("n", n), &n, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(1);
                black_box(spir::run(
                    &mut t,
                    &params,
                    &b.pk,
                    &b.sk,
                    &db,
                    n / 2,
                    &mut b.rng,
                ))
            })
        });
    }
    group.finish();
}

/// The tentpole measurement: the server's Ω(n) PIR scan, serial (1 thread)
/// vs the worker pool (4 threads). Transcripts are byte-identical either
/// way; only wall-clock may differ.
fn bench_parallel_scan(c: &mut Criterion) {
    use spfe::math::par;
    use spfe::pir::hom_pir::{self, Layout};
    let mut b = Bench::new();
    let mut group = c.benchmark_group("pir_scan_threads");
    group.sample_size(10);
    for n in [1_024usize, 4_096] {
        let db = make_db(n, 1_000);
        let layout = Layout::square(n);
        let q = hom_pir::client_query(&b.pk, &layout, n / 2, &mut b.rng);
        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(&format!("n{n}_threads"), threads),
                &threads,
                |bench, &threads| {
                    par::set_threads(Some(threads));
                    bench.iter(|| black_box(hom_pir::server_answer(&b.pk, &layout, &db, &q)));
                    par::set_threads(None);
                },
            );
        }
    }
    group.finish();
}

fn bench_batched_vs_independent(c: &mut Criterion) {
    let mut b = Bench::new();
    let n = 2_048;
    let db = make_db(n, 1_000);
    let mut group = c.benchmark_group("spir_batched_vs_independent");
    group.sample_size(10);
    for m in [4usize, 16] {
        let indices = make_indices(n, m);
        group.bench_with_input(BenchmarkId::new("batched_m", m), &m, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(1);
                black_box(batched::run(
                    &mut t, &b.group, &b.pk, &b.sk, &db, &indices, &mut b.rng,
                ))
            })
        });
        let params = SpirParams::new(b.group.clone(), n);
        group.bench_with_input(BenchmarkId::new("independent_m", m), &m, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(1);
                for &i in &indices {
                    black_box(
                        spir::run(&mut t, &params, &b.pk, &b.sk, &db, i, &mut b.rng).unwrap(),
                    );
                }
            })
        });
    }
    group.finish();
}

fn bench_recursion_ablation(c: &mut Criterion) {
    let mut b = Bench::new();
    let mut group = c.benchmark_group("pir_recursion");
    group.sample_size(10);
    for n in [1_024usize, 8_192] {
        let db = make_db(n, 1_000);
        group.bench_with_input(BenchmarkId::new("sqrt_n", n), &n, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(1);
                black_box(spfe::pir::hom_pir::run(
                    &mut t,
                    &b.pk,
                    &b.sk,
                    &db,
                    n / 2,
                    &mut b.rng,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("cube_root_n", n), &n, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(1);
                black_box(spfe::pir::recursive::run(
                    &mut t,
                    &b.pk,
                    &b.sk,
                    &db,
                    n / 2,
                    &mut b.rng,
                ))
            })
        });
    }
    group.finish();
}

fn bench_it_schemes(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(5);
    let n = 4_096;
    let mut group = c.benchmark_group("pir_information_theoretic");
    group.sample_size(20);

    let byte_db: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 256) as u8; 8]).collect();
    group.bench_function("xor2_2server", |bench| {
        bench.iter(|| {
            let mut t = Transcript::new(2);
            black_box(xor2::run(&mut t, &byte_db, n / 3, &mut rng))
        })
    });

    let db = make_db(n, 1_000);
    let field = Fp64::at_least(1 << 20);
    let params = PolyItParams::new(n, 1, field);
    let k = params.num_servers();
    group.bench_function("poly_it_kserver", |bench| {
        bench.iter(|| {
            let mut t = Transcript::new(k);
            black_box(poly_it::run(&mut t, &params, &db, n / 3, &mut rng))
        })
    });
    group.bench_function("poly_it_symmetric", |bench| {
        bench.iter(|| {
            let mut t = Transcript::new(k);
            black_box(poly_it::run_symmetric(
                &mut t,
                &params,
                &db,
                n / 3,
                9,
                &mut rng,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_spir_scaling,
    bench_parallel_scan,
    bench_batched_vs_independent,
    bench_recursion_ablation,
    bench_it_schemes
);
criterion_main!(benches);
