//! E2 — Theorem 2: the §3.1 multi-server protocol across database sizes,
//! privacy thresholds, and function representations (sum vs formula).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spfe::circuits::formula::{BinOp, Formula};
use spfe::core::multiserver::{self, MsFunction, MultiServerParams};
use spfe::math::Fp64;
use spfe::transport::Transcript;
use spfe_bench::{field_for, make_db, make_indices, Bench};
use std::hint::black_box;

fn bench_sum_scaling(c: &mut Criterion) {
    let mut b = Bench::new();
    let mut group = c.benchmark_group("multiserver_sum");
    group.sample_size(10);
    for n in [256usize, 4_096, 65_536] {
        let db = make_db(n, 1_000);
        let indices = make_indices(n, 4);
        let field = field_for(n, 4, 1_000);
        let params = MultiServerParams::new(n, 1, field, MsFunction::Sum { m: 4 });
        let k = params.num_servers();
        group.bench_with_input(BenchmarkId::new("n", n), &n, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(k);
                black_box(multiserver::run(
                    &mut t,
                    &params,
                    &db,
                    &indices,
                    Some(7),
                    &mut b.rng,
                ))
            })
        });
    }
    group.finish();
}

fn bench_privacy_threshold(c: &mut Criterion) {
    let mut b = Bench::new();
    let n = 4_096;
    let db = make_db(n, 1_000);
    let indices = make_indices(n, 4);
    let field = field_for(n, 4, 1_000);
    let mut group = c.benchmark_group("multiserver_threshold");
    group.sample_size(10);
    for t_priv in [1usize, 2, 4] {
        let params = MultiServerParams::new(n, t_priv, field, MsFunction::Sum { m: 4 });
        let k = params.num_servers();
        group.bench_with_input(BenchmarkId::new("t", t_priv), &t_priv, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(k);
                black_box(multiserver::run(
                    &mut t, &params, &db, &indices, None, &mut b.rng,
                ))
            })
        });
    }
    group.finish();
}

fn bench_formula(c: &mut Criterion) {
    let mut b = Bench::new();
    let n = 1_024;
    let db: Vec<u64> = (0..n as u64).map(|i| (i % 2 == 0) as u64).collect();
    let field = Fp64::at_least(1 << 20);
    let mut group = c.benchmark_group("multiserver_formula");
    group.sample_size(10);
    for s in [2usize, 4] {
        let phi = Formula::balanced(BinOp::And, s);
        let indices = make_indices(n, s);
        let params = MultiServerParams::new(n, 1, field, MsFunction::Formula(phi));
        let k = params.num_servers();
        group.bench_with_input(BenchmarkId::new("formula_size", s), &s, |bench, _| {
            bench.iter(|| {
                let mut t = Transcript::new(k);
                black_box(multiserver::run(
                    &mut t, &params, &db, &indices, None, &mut b.rng,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sum_scaling,
    bench_privacy_threshold,
    bench_formula
);
criterion_main!(benches);
