//! Micro-benchmarks of the substrates: the constant factors behind every
//! protocol cost (modular exponentiation, homomorphic operations, garbling,
//! interpolation, symmetric primitives).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spfe::circuits::builders::sum_circuit;
use spfe::crypto::{
    chacha, ChaChaRng, HomomorphicPk, HomomorphicScheme, HomomorphicSk, Paillier, Sha256,
};
use spfe::math::{modular, Fp64, Montgomery, Nat, Poly, XorShiftRng};
use spfe::mpc::garble;
use std::hint::black_box;

fn bench_bignum(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(1);
    let mut group = c.benchmark_group("bignum");
    let a = Nat::random_bits(&mut rng, 1024);
    let b = Nat::random_bits(&mut rng, 1024);
    group.bench_function("mul_1024", |bench| bench.iter(|| black_box(&a * &b)));
    let m = Nat::random_exact_bits(&mut rng, 512);
    group.bench_function("div_rem_2048_by_512", |bench| {
        let big = a.mul(&b);
        bench.iter(|| black_box(big.div_rem(&m)))
    });
    let modulus = {
        let mut v = Nat::random_exact_bits(&mut rng, 512);
        v.set_bit(0, true);
        v
    };
    let mont = Montgomery::new(modulus.clone());
    let base = Nat::random_bits(&mut rng, 512);
    let exp = Nat::random_bits(&mut rng, 512);
    group.bench_function("modexp_512", |bench| {
        bench.iter(|| black_box(mont.pow(&base, &exp)))
    });
    group.bench_function("mod_inv_512", |bench| {
        bench.iter(|| black_box(modular::mod_inv(&base, &modulus)))
    });
    group.finish();
}

fn bench_paillier(c: &mut Criterion) {
    let mut rng = ChaChaRng::from_u64_seed(1);
    let (pk, sk) = Paillier::keygen(512, &mut rng);
    let mut group = c.benchmark_group("paillier_512");
    group.sample_size(20);
    let m = Nat::from(123_456u64);
    group.bench_function("encrypt", |bench| {
        bench.iter(|| black_box(pk.encrypt(&m, &mut rng)))
    });
    let ct = pk.encrypt(&m, &mut rng);
    group.bench_function("decrypt", |bench| bench.iter(|| black_box(sk.decrypt(&ct))));
    group.bench_function("add", |bench| bench.iter(|| black_box(pk.add(&ct, &ct))));
    group.bench_function("mul_const_20bit", |bench| {
        bench.iter(|| black_box(pk.mul_const(&ct, &Nat::from(777_777u64))))
    });
    group.finish();
}

fn bench_symmetric(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetric");
    let data = vec![0xABu8; 1 << 16];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_64k", |bench| {
        bench.iter(|| black_box(Sha256::digest(&data)))
    });
    group.bench_function("chacha20_64k", |bench| {
        bench.iter(|| black_box(chacha::keystream(&[7u8; 32], &[0u8; 12], data.len())))
    });
    group.finish();
}

fn bench_garbling(c: &mut Criterion) {
    let mut group = c.benchmark_group("garbling");
    for m in [4usize, 16] {
        let circuit = sum_circuit(m, 8);
        group.bench_function(format!("garble_sum_m{m}"), |bench| {
            bench.iter(|| black_box(garble::garble(&circuit, [1u8; 32])))
        });
        let (gc, secrets) = garble::garble(&circuit, [1u8; 32]);
        let labels: Vec<garble::Label> = (0..circuit.num_inputs())
            .map(|i| secrets.input_label(i, i % 2 == 0))
            .collect();
        group.bench_function(format!("evaluate_sum_m{m}"), |bench| {
            bench.iter(|| black_box(garble::evaluate(&circuit, &gc, &labels)))
        });
    }
    group.finish();
}

fn bench_polynomials(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(2);
    let f = Fp64::at_least(1 << 61);
    let mut group = c.benchmark_group("polynomials");
    for deg in [16usize, 64, 256] {
        let p = Poly::random(deg, f, &mut rng);
        let xs: Vec<u64> = (1..=(deg as u64 + 1)).collect();
        let ys = p.eval_many(&xs);
        group.bench_function(format!("interpolate_at0_deg{deg}"), |bench| {
            bench.iter(|| black_box(Poly::interpolate_at(&xs, &ys, 0, f)))
        });
    }
    // The selector-polynomial evaluation that dominates §3.1 server work.
    let db: Vec<u64> = (0..65_536u64).map(|i| i % 997).collect();
    let ell = spfe::circuits::formula::index_bits(db.len());
    let point: Vec<u64> = (0..ell).map(|_| f.random(&mut rng)).collect();
    group.bench_function("selector_eval_n65536", |bench| {
        bench.iter(|| black_box(spfe::circuits::formula::selector_eval(&db, &point, f)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bignum,
    bench_paillier,
    bench_symmetric,
    bench_garbling,
    bench_polynomials
);
criterion_main!(benches);
