//! E1 — Table 1: wall-clock benchmarks of the five single-server SPFE
//! constructions computing the same private sum.
//!
//! Communication columns come from the `spfe-tables` harness; this bench
//! provides the computation column.

use criterion::{criterion_group, criterion_main, Criterion};
use spfe::circuits::builders::sum_circuit;
use spfe::core::{psm_spfe, two_phase, Statistic};
use spfe::transport::Transcript;
use spfe_bench::{field_for, make_db, make_indices, Bench};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut b = Bench::new();
    let n = 256;
    let m = 4;
    let db = make_db(n, 256);
    let indices = make_indices(n, m);
    let field = field_for(n, m, 256);
    let circuit = sum_circuit(m, 8);

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    group.bench_function("s3.2_psm", |bench| {
        bench.iter(|| {
            let mut t = Transcript::new(1);
            black_box(psm_spfe::run_yao_psm(
                &mut t, &b.group, &b.pk, &b.sk, &db, &indices, &circuit, 8, &mut b.rng,
            ))
        })
    });

    group.bench_function("s3.3.1_select1_yao", |bench| {
        bench.iter(|| {
            let mut t = Transcript::new(1);
            black_box(two_phase::run_select1_yao(
                &mut t,
                &b.group,
                &b.pk,
                &b.sk,
                &db,
                &indices,
                &Statistic::Sum,
                field,
                &mut b.rng,
            ))
        })
    });

    group.bench_function("s3.3.2v1_polymask_yao", |bench| {
        bench.iter(|| {
            let mut t = Transcript::new(1);
            black_box(two_phase::run_select2v1_yao(
                &mut t,
                &b.group,
                &b.pk,
                &b.sk,
                &db,
                &indices,
                &Statistic::Sum,
                field,
                &mut b.rng,
            ))
        })
    });

    group.bench_function("s3.3.2v2_polymask_yao", |bench| {
        bench.iter(|| {
            let mut t = Transcript::new(1);
            black_box(two_phase::run_select2v2_yao(
                &mut t,
                &b.group,
                &b.pk,
                &b.sk,
                &b.spk,
                &b.ssk,
                &db,
                &indices,
                &Statistic::Sum,
                field,
                &mut b.rng,
            ))
        })
    });

    group.bench_function("s3.3.3_encdb_arith", |bench| {
        bench.iter(|| {
            let mut t = Transcript::new(1);
            black_box(two_phase::run_select3_arith(
                &mut t,
                &b.group,
                &b.pk,
                &b.sk,
                &b.spk,
                &b.ssk,
                &db,
                &indices,
                &Statistic::Sum,
                &mut b.rng,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
