//! Shared harness for the SPFE experiment suite.
//!
//! Each experiment in DESIGN.md §3 has a criterion bench (wall-clock
//! computation) and a row-producer here (exact communication/round
//! measurements via [`Transcript`]); the `spfe-tables` binary prints the
//! paper-style tables recorded in EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod audit;
pub mod nettrace;
pub mod serve;
pub mod trend;

use spfe::crypto::{ChaChaRng, HomomorphicScheme, Paillier, PaillierPk, PaillierSk, SchnorrGroup};
use spfe::math::Fp64;
use spfe::transport::{CommReport, Transcript};
use spfe_obs::CostReport;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Deterministic crypto setup shared by all experiments (fixed seed so the
/// tables are reproducible; the *protocol* randomness is still fresh per
/// run from the returned RNG).
pub struct Bench {
    /// Group for OTs.
    pub group: SchnorrGroup,
    /// Client Paillier keys.
    pub pk: PaillierPk,
    /// Client Paillier secret.
    pub sk: PaillierSk,
    /// Server Paillier keys (for §3.3.2v2 / §3.3.3).
    pub spk: PaillierPk,
    /// Server Paillier secret.
    pub ssk: PaillierSk,
    /// Protocol randomness.
    pub rng: ChaChaRng,
}

impl Bench {
    /// Standard setup: 96-bit Schnorr group, 160-bit Paillier moduli —
    /// small enough to sweep `n` quickly, large enough that every
    /// plaintext-capacity precondition of the protocols holds. Key sizes
    /// scale all κ-terms together, so table *shapes* are unaffected
    /// (DESIGN.md §4, substitution 4).
    pub fn new() -> Self {
        let mut rng = ChaChaRng::from_u64_seed(0xBEAC);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = Paillier::keygen(160, &mut rng);
        let (spk, ssk) = Paillier::keygen(160, &mut rng);
        Bench {
            group,
            pk,
            sk,
            spk,
            ssk,
            rng,
        }
    }
}

impl Default for Bench {
    fn default() -> Self {
        Self::new()
    }
}

/// A synthetic database of `n` values in `[0, max)` (deterministic).
pub fn make_db(n: usize, max: u64) -> Vec<u64> {
    (0..n as u64).map(|i| (i * 0x9E37 + 0x79B9) % max).collect()
}

/// `m` well-spread indices into `[0, n)` (deterministic).
pub fn make_indices(n: usize, m: usize) -> Vec<usize> {
    (0..m).map(|j| (j * 2_654_435_761) % n).collect()
}

/// A field safely above `n` and any sum of `m` values below `max`.
pub fn field_for(n: usize, m: usize, max: u64) -> Fp64 {
    Fp64::at_least((n as u64).max(m as u64 * max) + 1)
}

/// One measured protocol execution.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Communication totals.
    pub comm: CommReport,
    /// Wall-clock duration of the complete (client+server) execution.
    pub elapsed: Duration,
}

/// Runs `f` against a fresh transcript and captures both cost dimensions.
pub fn measure<F: FnOnce(&mut Transcript)>(num_servers: usize, f: F) -> Measurement {
    let mut t = Transcript::new(num_servers);
    let start = Instant::now();
    f(&mut t);
    Measurement {
        comm: t.report(),
        elapsed: start.elapsed(),
    }
}

/// Cost reports collected by [`measure_as`] since the last [`take_costs`].
static COSTS: Mutex<Vec<CostReport>> = Mutex::new(Vec::new());

/// Like [`measure`], but also assembles a full [`CostReport`] — spans, op
/// counters, and per-label communication — for the execution and appends it
/// to the global collection drained by [`take_costs`].
///
/// The global span/counter state is reset before `f` runs, so each
/// measurement window is self-contained; callers must not nest or
/// interleave `measure_as` calls across threads.
pub fn measure_as<F: FnOnce(&mut Transcript)>(
    experiment: &str,
    protocol: &str,
    num_servers: usize,
    f: F,
) -> Measurement {
    let mut t = Transcript::new(num_servers);
    spfe_obs::reset();
    let start = Instant::now();
    f(&mut t);
    let elapsed = start.elapsed();
    let report = CostReport::assemble(
        experiment,
        protocol,
        elapsed.as_nanos() as u64,
        spfe_obs::spans_snapshot(),
        &spfe_obs::ops_snapshot(),
        t.comm_stat(),
        spfe_obs::mem::snapshot(),
    );
    COSTS.lock().unwrap().push(report);
    Measurement {
        comm: t.report(),
        elapsed,
    }
}

/// Drains every report collected by [`measure_as`] so far.
pub fn take_costs() -> Vec<CostReport> {
    std::mem::take(&mut COSTS.lock().unwrap())
}

/// Formats a byte count human-readably.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// Formats a duration compactly.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2} s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.1} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0} µs", d.as_secs_f64() * 1e6)
    }
}

/// Prints a Markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_workloads() {
        assert_eq!(make_db(10, 100), make_db(10, 100));
        assert_eq!(make_indices(100, 5), make_indices(100, 5));
        assert!(make_indices(100, 5).iter().all(|&i| i < 100));
        assert!(make_db(50, 7).iter().all(|&v| v < 7));
    }

    #[test]
    fn field_covers_inputs() {
        let f = field_for(1000, 8, 500);
        assert!(f.modulus() > 4000);
        assert!(f.modulus() > 1000);
    }

    #[test]
    fn measure_captures_both_dimensions() {
        let m = measure(1, |t| {
            let _ = t.client_to_server(0, "x", &42u64).unwrap();
        });
        assert_eq!(m.comm.messages, 1);
    }

    #[test]
    fn measure_as_collects_cost_reports() {
        let _ = take_costs(); // drain anything a parallel test left behind
        let m = measure_as("eX", "ping", 1, |t| {
            let _ = t.client_to_server(0, "ping-q", &7u64).unwrap();
            let _ = t.server_to_client(0, "ping-a", &8u64).unwrap();
        });
        assert_eq!(m.comm.messages, 2);
        let costs = take_costs();
        let r = costs.iter().find(|r| r.experiment == "eX").unwrap();
        assert_eq!(r.protocol, "ping");
        assert_eq!(r.comm.messages, 2);
        assert_eq!(r.comm.labels.len(), 2);
        assert!(take_costs().iter().all(|r| r.experiment != "eX"));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(100), "100 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert!(fmt_bytes(3 << 20).contains("MiB"));
        assert!(fmt_dur(Duration::from_millis(5)).contains("ms"));
    }
}
