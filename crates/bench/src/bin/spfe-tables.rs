//! The experiment harness: regenerates every table/figure-equivalent of the
//! paper (DESIGN.md §3, E1–E10) and prints them as Markdown.
//!
//! Run with: `cargo run --release -p spfe-bench --bin spfe-tables`
//! (append experiment ids, e.g. `e1`, to run a subset; unknown ids abort
//! with the list of available ones). With `--json` the run also writes
//! `BENCH_costs.json` — the `spfe-cost-report/v3` suite merging spans
//! (with latency quantiles and the heap axis), op counters, and per-label
//! communication for every measured execution. Subcommands:
//!
//! * `validate [paths...]` — re-parses each document (cost-report suite
//!   v3 or the older v2/v1, or an `spfe-audit/v1` leakage audit,
//!   reporting which) and fails on schema drift; with several files it
//!   prints a per-schema tally at the end.
//! * `audit [driver|eN|all ...] [--json] [--check] [--accept]
//!   [--baseline PATH]` — the differential obliviousness gate (DESIGN.md
//!   §14): re-runs every selected harness driver over its secret-input
//!   variants and the masked fault seeds, prints per-party view
//!   fingerprints, writes `spfe-audit/v1` JSON (`--json`), and compares
//!   against / blesses the committed `BENCH_audit.json` baseline
//!   (`--check` / `--accept`).
//! * `trace <id> [--weight <op>|allocs|alloc_bytes]` — re-runs one
//!   experiment with the event journal on and writes `<id>.trace.json`
//!   (Perfetto/Chrome `trace_event` format) plus `<id>.folded`
//!   (flamegraph folded stacks, wall-time weighted; `--weight` adds a
//!   counter-weighted `<id>.<weight>.folded` — the alloc weights need an
//!   `obs-alloc` build).
//! * `mem <id>` — re-runs one experiment at one thread with the
//!   instrumented allocator and prints the per-span heap table (needs an
//!   `obs-alloc` build).
//! * `trend --baseline A --current B [--threshold PCT] [--json]
//!   [--accept]` — compares two suites on deterministic op counters, comm
//!   bytes, and (single-thread, instrumented baselines only) heap
//!   counters, exiting nonzero on any growth past the threshold (default
//!   5%); `--json` prints every delta machine-readably; `--accept`
//!   instead copies `B` over `A` to bless an intentional change.
//! * `trend --scaling [--scan PATH] [--min-n N] [--speedup PCT]
//!   [--overhead PCT]` — the parallel-scaling gate over
//!   `BENCH_pir_scan.json`: on a machine with `cores ≥ threads` the
//!   multi-thread scan must beat serial by ≥ `--speedup` (default 10%) at
//!   every `n ≥ --min-n` (default 4096); with fewer cores the gate
//!   degrades to a pool-overhead bound of `--overhead` (default 10%).
//! * `serve-report SNAPSHOT [--baseline EARLIER]` — the service-health
//!   gate over `spfe-metrics/v1` snapshots scraped from a running
//!   `spfe-server` (`spfe-client stats`): absolute health rules (zero
//!   failed sessions, nonzero traffic, registry invariants), plus — with
//!   `--baseline` — a drift diff against an earlier scrape of the same
//!   run that pinpoints which failure kind fired inside the window.
//!
//! Setting `SPFE_TRACE=1` makes a normal table run also record the journal
//! and write `spfe.trace.json`/`spfe.folded` covering every experiment
//! executed.

use spfe::circuits::builders::sum_circuit;
use spfe::circuits::formula::index_bits;
use spfe::core::baseline;
use spfe::core::input_select;
use spfe::core::multiserver::{self, MsFunction, MultiServerParams};
use spfe::core::psm_spfe;
use spfe::core::security::table1;
use spfe::core::stats;
use spfe::core::two_phase;
use spfe::core::{ProtocolMeta, Statistic};
use spfe::mpc::psm;
use spfe::pir;
use spfe_bench::*;

/// Every runnable experiment: id, one-line description, entry point.
const EXPERIMENTS: &[(&str, &str, fn())] = &[
    (
        "e1",
        "Table 1 — single-server SPFE constructions",
        e1_table1,
    ),
    ("e2", "Theorem 2 — multi-server SPFE", e2_theorem2),
    ("e3", "Example 1 + Corollary 4 — PSM communication", e3_psm),
    (
        "e4",
        "§3.3 input selection (covers E5 too)",
        e4_e5_input_selection,
    ),
    ("e6", "§4 weighted sum vs linear baseline", e6_weighted_sum),
    ("e7", "§4 average+variance package", e7_package),
    ("e8", "§4 frequency counting", e8_frequency),
    ("e9", "sublinearity crossover", e9_crossover),
    (
        "e10",
        "batched SPIR(n,m) vs m independent SPIR(n,1)",
        e10_batched,
    ),
    ("e11", "PIR recursion ablation", e11_recursion),
    ("e12", "SPIR as a black box", e12_spir_blackbox),
    (
        "pir-scan",
        "server column scan, serial vs worker pool",
        pir_scan,
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    match args.first().map(String::as_str) {
        Some("validate") => {
            validate_cmd(&args[1..]);
            return;
        }
        Some("trace") => {
            trace_cmd(&args[1..]);
            return;
        }
        Some("mem") => {
            mem_cmd(&args[1..]);
            return;
        }
        Some("trend") => {
            trend_cmd(&args[1..]);
            return;
        }
        Some("audit") => {
            audit_cmd(&args[1..]);
            return;
        }
        Some("serve-report") => {
            serve_report_cmd(&args[1..]);
            return;
        }
        Some("net-trace") => {
            net_trace_cmd(&args[1..]);
            return;
        }
        _ => {}
    }

    let mut json = false;
    let mut selected: Vec<&str> = Vec::new();
    for arg in &args {
        if arg == "--json" {
            json = true;
            continue;
        }
        let id = canonical_id(arg);
        let Some(exp) = EXPERIMENTS.iter().find(|(k, _, _)| *k == id) else {
            eprintln!("error: unknown experiment id `{arg}`");
            list_ids();
            std::process::exit(2);
        };
        if !selected.contains(&exp.0) {
            selected.push(exp.0);
        }
    }

    let env_trace = std::env::var("SPFE_TRACE").is_ok_and(|v| v == "1");
    if env_trace {
        spfe_obs::trace::reset();
        spfe_obs::trace::set_tracing(true);
    }

    println!("# SPFE experiment tables (generated by spfe-tables)");
    for (id, _, run) in EXPERIMENTS {
        if selected.is_empty() || selected.contains(id) {
            run();
        }
    }

    if env_trace {
        spfe_obs::trace::set_tracing(false);
        let trace = spfe_obs::trace::take();
        write_trace_artifacts("spfe", &trace, None);
    }

    if json {
        let reports = take_costs();
        let threads = spfe::math::par::threads();
        std::fs::write("BENCH_costs.json", spfe_obs::suite_json(threads, &reports))
            .expect("write BENCH_costs.json");
        println!("\nwrote BENCH_costs.json ({} reports)", reports.len());
    }
}

/// Resolves a user-facing experiment id to its canonical lowercase form.
/// E4 and E5 share one table, so `e5` is an alias for `e4` everywhere an
/// id is accepted.
fn canonical_id(raw: &str) -> String {
    let lower = raw.to_lowercase();
    if lower == "e5" {
        "e4".to_owned()
    } else {
        lower
    }
}

fn list_ids() {
    eprintln!("available ids:");
    for (k, what, _) in EXPERIMENTS {
        eprintln!("  {k:<9} {what}");
    }
    eprintln!(
        "  (plus the `validate [paths...]`, `trace <id> [--weight <op>]`, `mem <id>`, \
         `trend --baseline A --current B`, `audit [driver|eN|all]`, \
         `serve-report SNAPSHOT [--baseline EARLIER]`, and \
         `net-trace <id> --merge CLIENT SERVER [-o OUT] [--metrics SNAPSHOT]` \
         subcommands and the `--json` flag)"
    );
}

/// `validate [paths...]`: checks each document — cost-report suite
/// (v1/v2/v3), `spfe-audit/v1` leakage audit, or `spfe-metrics/v1`
/// operational snapshot, dispatching on the `schema` field — and, given
/// several, prints a per-schema tally. Exits nonzero if any file fails.
fn validate_cmd(args: &[String]) {
    use spfe_bench::audit::DocKind;
    let default = ["BENCH_costs.json".to_owned()];
    let paths: &[String] = if args.is_empty() { &default } else { args };
    let mut by_version = [0usize; 3]; // cost v1, v2, v3
    let mut audits = 0usize;
    let mut metrics = 0usize;
    let mut failures = 0usize;
    for path in paths {
        let checked = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|src| spfe_bench::audit::validate_doc(&src));
        match checked {
            Ok((summary, kind)) => {
                println!("{path}: {summary}");
                match kind {
                    DocKind::Audit => audits += 1,
                    DocKind::Metrics => metrics += 1,
                    DocKind::Cost(version) => {
                        if let Some(slot) = by_version.get_mut(version as usize - 1) {
                            *slot += 1;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                failures += 1;
            }
        }
    }
    if paths.len() > 1 {
        println!(
            "schemas: v1={} v2={} v3={} audit={audits} metrics={metrics} \
             ({} file(s), {} failure(s))",
            by_version[0],
            by_version[1],
            by_version[2],
            paths.len(),
            failures
        );
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// `net-trace <id> --merge CLIENT SERVER [-o OUT] [--metrics SNAPSHOT]`:
/// merges a client and a server `--trace` journal of the same networked
/// run into one Perfetto timeline (DESIGN.md §17) and gates on causal
/// consistency: every receive's Lamport stamp after its matching send,
/// per-session pair counts and half-round depths equal on both sides,
/// and — with `--metrics` — the server journal's byte totals equal to
/// the metrics registry's. Exits nonzero on any violation; the merged
/// timeline is still written so a failing run can be inspected.
fn net_trace_cmd(args: &[String]) {
    use spfe_bench::nettrace;
    let usage = || -> ! {
        eprintln!(
            "usage: spfe-tables net-trace <id> --merge CLIENT SERVER [-o OUT] \
             [--metrics SNAPSHOT]"
        );
        std::process::exit(2);
    };
    let mut id: Option<&str> = None;
    let mut client_path: Option<&str> = None;
    let mut server_path: Option<&str> = None;
    let mut out_path: Option<&str> = None;
    let mut metrics_path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--merge" => {
                client_path = it.next().map(String::as_str);
                server_path = it.next().map(String::as_str);
                if server_path.is_none() {
                    eprintln!("error: --merge needs CLIENT and SERVER trace paths");
                    usage();
                }
            }
            "-o" | "--out" => {
                out_path = it.next().map(String::as_str);
                if out_path.is_none() {
                    eprintln!("error: -o needs a path");
                    usage();
                }
            }
            "--metrics" => {
                metrics_path = it.next().map(String::as_str);
                if metrics_path.is_none() {
                    eprintln!("error: --metrics needs a path");
                    usage();
                }
            }
            other if other.starts_with('-') => {
                eprintln!("error: unknown net-trace argument `{other}`");
                usage();
            }
            other if id.is_none() => id = Some(other),
            _ => usage(),
        }
    }
    let (Some(id), Some(client_path), Some(server_path)) = (id, client_path, server_path) else {
        usage();
    };
    let load_party = |path: &str| -> nettrace::PartyTrace {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        });
        nettrace::parse_party(&src).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        })
    };
    let client = load_party(client_path);
    let server = load_party(server_path);
    let (timeline, mut report) = nettrace::merge(id, &client, &server);
    if let Some(path) = metrics_path {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        });
        let snap = spfe_obs::metrics::parse_snapshot(&src).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        });
        report
            .violations
            .extend(nettrace::check_against_metrics(&server, &snap));
    }
    let out_path = out_path.map_or_else(|| format!("{id}.net-trace.json"), str::to_owned);
    if let Err(e) = std::fs::write(&out_path, &timeline) {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1);
    }
    println!("{}", report.summary());
    println!("wrote {out_path}");
    if !report.violations.is_empty() {
        for v in &report.violations {
            eprintln!("violation: {v}");
        }
        std::process::exit(1);
    }
}

/// `serve-report SNAPSHOT [--baseline EARLIER]`: the service-health gate
/// over `spfe-metrics/v1` snapshots (DESIGN.md §16). Always applies the
/// absolute health rules to `SNAPSHOT` (no failed sessions, nonzero
/// traffic, registry invariants intact); with `--baseline` additionally
/// diffs against an earlier scrape of the same server run, flagging any
/// failure counter that grew inside the window and any monotonic counter
/// that went backwards. Exits nonzero on any violation.
fn serve_report_cmd(args: &[String]) {
    use spfe_bench::serve;
    let mut snapshot_path: Option<&str> = None;
    let mut baseline_path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                let Some(path) = it.next() else {
                    eprintln!("error: --baseline needs a path");
                    std::process::exit(2);
                };
                baseline_path = Some(path);
            }
            other if other.starts_with("--") => {
                eprintln!("error: unknown serve-report argument `{other}`");
                eprintln!("usage: spfe-tables serve-report SNAPSHOT [--baseline EARLIER]");
                std::process::exit(2);
            }
            other => snapshot_path = Some(other),
        }
    }
    let Some(snapshot_path) = snapshot_path else {
        eprintln!("usage: spfe-tables serve-report SNAPSHOT [--baseline EARLIER]");
        std::process::exit(2);
    };
    let load = |path: &str| -> spfe_obs::metrics::MetricsSnapshot {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        });
        spfe_obs::metrics::parse_snapshot(&src).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        })
    };
    let snap = load(snapshot_path);
    println!(
        "serve-report: {} session(s) opened, {} completed, {} failed, {} over {} driver row(s)",
        snap.sessions_opened,
        snap.sessions_completed,
        snap.sessions_failed(),
        fmt_bytes(snap.bytes_total()),
        snap.drivers.len()
    );
    let mut violations = serve::check_health(&snap).violations;
    if let Some(baseline_path) = baseline_path {
        let base = load(baseline_path);
        let drift = serve::compare_snapshots(&base, &snap).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        for d in drift.deltas.iter().filter(|d| d.baseline != d.current) {
            println!(
                "  delta {}: {} -> {}{}",
                d.metric,
                d.baseline,
                d.current,
                if d.flagged { "  [FLAGGED]" } else { "" }
            );
        }
        violations.extend(drift.violations);
    }
    if violations.is_empty() {
        println!("serve-report: OK — healthy service, no failure drift");
        return;
    }
    for v in &violations {
        eprintln!("SERVE VIOLATION {v}");
    }
    eprintln!("serve-report: {} violation(s)", violations.len());
    std::process::exit(1);
}

/// `audit [selectors...] [--json] [--check] [--accept] [--baseline PATH]`:
/// the differential obliviousness gate (DESIGN.md §14). Selectors are
/// harness driver names (`xor2`, `spir`, …), experiment ids (`e1`, …,
/// mapped to the drivers they exercise), or `all` (the default). Every
/// selected driver is swept over its secret-input variants and the masked
/// fault seeds; `--json` writes the `spfe-audit/v1` document, `--check`
/// compares fingerprints against the committed baseline, `--accept`
/// blesses the current sweep as the new baseline.
fn audit_cmd(args: &[String]) {
    use spfe_bench::audit::{self, AUDIT_GROUPS, AUDIT_SEEDS};
    let mut json = false;
    let mut check = false;
    let mut accept = false;
    let mut baseline_path = "BENCH_audit.json".to_owned();
    let mut selectors: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--check" => check = true,
            "--accept" => accept = true,
            "--baseline" => {
                let Some(path) = it.next() else {
                    eprintln!("error: --baseline needs a path");
                    std::process::exit(2);
                };
                baseline_path = path.clone();
            }
            other if other.starts_with("--") => {
                eprintln!("error: unknown audit argument `{other}`");
                eprintln!(
                    "usage: spfe-tables audit [driver|eN|all ...] [--json] [--check] \
                     [--accept] [--baseline PATH]"
                );
                std::process::exit(2);
            }
            other => selectors.push(canonical_id(other)),
        }
    }

    let table = spfe::harness::drivers();
    let mut names: Vec<&str> = Vec::new();
    let push = |names: &mut Vec<&str>, n: &'static str| {
        if !names.contains(&n) {
            names.push(n);
        }
    };
    if selectors.is_empty() || selectors.iter().any(|s| s == "all") {
        for d in &table {
            push(&mut names, d.name);
        }
    }
    for sel in &selectors {
        if sel == "all" {
            continue;
        }
        if let Some(d) = table.iter().find(|d| d.name == *sel) {
            push(&mut names, d.name);
        } else if let Some((_, group)) = AUDIT_GROUPS.iter().find(|(id, _)| id == sel) {
            for n in *group {
                push(&mut names, n);
            }
        } else {
            eprintln!("error: unknown audit selector `{sel}`");
            eprintln!("drivers:");
            for d in &table {
                eprintln!("  {}", d.name);
            }
            eprintln!("experiment groups:");
            for (id, group) in AUDIT_GROUPS {
                eprintln!("  {id:<4} -> {}", group.join(", "));
            }
            std::process::exit(2);
        }
    }

    let threads = spfe::math::par::threads();
    let reports: Vec<audit::AuditReport> = table
        .iter()
        .filter(|d| names.contains(&d.name))
        .map(audit::audit_driver)
        .collect();

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            let (client_sent, client_recv) = r
                .parties
                .first()
                .map(|p| (p.sent_bytes, p.recv_bytes))
                .unwrap_or((0, 0));
            vec![
                r.driver.clone(),
                if r.ok() { "ok".into() } else { "LEAK".into() },
                r.servers.to_string(),
                r.parties
                    .first()
                    .map(|p| p.fingerprint[..16].to_owned())
                    .unwrap_or_default(),
                fmt_bytes(client_sent),
                fmt_bytes(client_recv),
            ]
        })
        .collect();
    print_table(
        &format!(
            "AUDIT — view-shape fingerprints ({} variant(s) × honest+{} masked seed(s))",
            spfe::harness::NUM_VARIANTS,
            AUDIT_SEEDS.len()
        ),
        &[
            "driver",
            "verdict",
            "servers",
            "client fp (prefix)",
            "client sent",
            "client recv",
        ],
        &rows,
    );

    let mut leaks = 0usize;
    for r in &reports {
        for d in &r.divergences {
            eprintln!("LEAK {}: {d}", r.driver);
        }
        if !r.ok() {
            leaks += 1;
        }
    }

    if accept {
        std::fs::write(&baseline_path, audit::audit_json(threads, &reports)).unwrap_or_else(|e| {
            eprintln!("error: writing {baseline_path}: {e}");
            std::process::exit(1);
        });
        println!(
            "accepted: wrote {baseline_path} ({} driver(s))",
            reports.len()
        );
    } else if json {
        let out = if selectors.len() == 1 && selectors[0] != "all" {
            format!("{}.audit.json", selectors[0])
        } else {
            "BENCH_audit.json".to_owned()
        };
        std::fs::write(&out, audit::audit_json(threads, &reports)).unwrap_or_else(|e| {
            eprintln!("error: writing {out}: {e}");
            std::process::exit(1);
        });
        println!("wrote {out} ({} driver(s))", reports.len());
    }

    if check {
        let src = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!(
                "error: {baseline_path}: {e} (generate one with `spfe-tables audit --accept`)"
            );
            std::process::exit(1);
        });
        let base = audit::parse_audit(&src).unwrap_or_else(|e| {
            eprintln!("error: {baseline_path}: {e}");
            std::process::exit(1);
        });
        let diffs = audit::compare_audits(&base, &reports);
        if diffs.is_empty() {
            println!(
                "audit: OK — {} driver(s) match the baseline at threads={threads}",
                reports.len()
            );
        } else {
            for d in &diffs {
                eprintln!("AUDIT DRIFT {d}");
            }
            eprintln!(
                "audit: {} divergence(s) vs {baseline_path}; if the wire format changed \
                 intentionally, re-bless with `spfe-tables audit --accept` (see EXPERIMENTS.md)",
                diffs.len()
            );
            std::process::exit(1);
        }
    }

    if leaks > 0 {
        eprintln!("audit: {leaks} driver(s) with a leak verdict");
        std::process::exit(1);
    }
}

/// `trace <id> [--weight <op>|allocs|alloc_bytes]`: re-runs one experiment
/// with the event journal on and writes the Perfetto JSON + folded-stack
/// artifacts.
fn trace_cmd(args: &[String]) {
    use spfe_obs::export::FoldWeight;
    let mut id: Option<&str> = None;
    let mut weight: Option<(FoldWeight, String)> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--weight" => {
                let Some(name) = it.next() else {
                    eprintln!("error: --weight needs an op name (e.g. `modexp`) or a heap weight");
                    std::process::exit(2);
                };
                let w = match name.as_str() {
                    "allocs" => FoldWeight::Allocs,
                    "alloc_bytes" => FoldWeight::AllocBytes,
                    other => {
                        let Some(op) = spfe_obs::Op::from_name(other) else {
                            eprintln!("error: unknown weight `{other}`; known weights:");
                            eprintln!("  allocs");
                            eprintln!("  alloc_bytes");
                            for op in spfe_obs::Op::ALL {
                                eprintln!("  {}", op.name());
                            }
                            std::process::exit(2);
                        };
                        FoldWeight::Op(op)
                    }
                };
                if matches!(w, FoldWeight::Allocs | FoldWeight::AllocBytes)
                    && !spfe_obs::alloc_enabled()
                {
                    eprintln!(
                        "error: `--weight {name}` needs the instrumented allocator; rebuild \
                         with `--features obs-alloc`"
                    );
                    std::process::exit(1);
                }
                weight = Some((w, name.clone()));
            }
            a => id = Some(a),
        }
    }
    let Some(id) = id else {
        eprintln!("usage: spfe-tables trace <experiment-id> [--weight <op>|allocs|alloc_bytes]");
        list_ids();
        std::process::exit(2);
    };
    let lower = canonical_id(id);
    let Some(&(id, _, run)) = EXPERIMENTS.iter().find(|(k, _, _)| *k == lower) else {
        eprintln!("error: unknown experiment id `{id}`");
        list_ids();
        std::process::exit(2);
    };
    if !spfe_obs::enabled() {
        eprintln!("error: built without the `obs` feature; the journal records nothing");
        std::process::exit(1);
    }
    // One thread: op deltas are attributed to the enclosing span on the
    // recording thread, so the single-threaded timeline is the complete,
    // fully attributed one.
    spfe::math::par::set_threads(Some(1));
    spfe_obs::trace::reset();
    spfe_obs::reset();
    spfe_obs::trace::set_tracing(true);
    run();
    spfe_obs::trace::set_tracing(false);
    let trace = spfe_obs::trace::take();
    spfe::math::par::set_threads(None);
    let _ = take_costs(); // drop the measurement side of the traced run
    write_trace_artifacts(id, &trace, weight);
}

/// Writes `<stem>.trace.json` + `<stem>.folded` (+ `<stem>.<weight>.folded`).
fn write_trace_artifacts(
    stem: &str,
    trace: &spfe_obs::trace::Trace,
    weight: Option<(spfe_obs::export::FoldWeight, String)>,
) {
    use spfe_obs::export::{folded, perfetto_json, FoldWeight};
    if trace.total_events() == 0 {
        eprintln!("error: empty trace — nothing was recorded");
        std::process::exit(1);
    }
    let json_path = format!("{stem}.trace.json");
    std::fs::write(&json_path, perfetto_json(trace)).expect("write trace json");
    let folded_path = format!("{stem}.folded");
    std::fs::write(&folded_path, folded(trace, FoldWeight::WallNs)).expect("write folded");
    println!(
        "wrote {json_path} ({} events, {} dropped, {} thread(s)) and {folded_path}",
        trace.total_events(),
        trace.total_dropped(),
        trace.threads.len()
    );
    if let Some((w, name)) = weight {
        let path = format!("{stem}.{name}.folded");
        std::fs::write(&path, folded(trace, w)).expect("write weighted folded");
        println!("wrote {path} (weighted by `{name}`)");
    }
    println!("open the .trace.json in ui.perfetto.dev or chrome://tracing");
}

/// `mem <id>`: re-runs one experiment at one thread with the instrumented
/// allocator and prints the per-span heap attribution tables.
fn mem_cmd(args: &[String]) {
    let Some(raw) = args.first() else {
        eprintln!("usage: spfe-tables mem <experiment-id>");
        list_ids();
        std::process::exit(2);
    };
    let lower = canonical_id(raw);
    let Some(&(id, _, run)) = EXPERIMENTS.iter().find(|(k, _, _)| *k == lower) else {
        eprintln!("error: unknown experiment id `{raw}`");
        list_ids();
        std::process::exit(2);
    };
    if !spfe_obs::alloc_enabled() {
        eprintln!(
            "error: built without the `obs-alloc` feature; the allocator counts nothing. \
             Rebuild with `cargo run --release -p spfe-bench --features obs-alloc --bin \
             spfe-tables -- mem {id}`"
        );
        std::process::exit(1);
    }
    // One thread: span-attributed heap deltas are complete and
    // deterministic only on the recording thread (DESIGN.md §12).
    spfe::math::par::set_threads(Some(1));
    let _ = take_costs();
    run();
    spfe::math::par::set_threads(None);
    let reports = take_costs();
    if reports.is_empty() {
        eprintln!("error: experiment `{id}` produced no cost reports");
        std::process::exit(1);
    }
    for r in &reports {
        let rows: Vec<Vec<String>> = r
            .spans
            .iter()
            .filter(|s| s.alloc_bytes > 0 || s.peak_live_bytes > 0)
            .map(|s| {
                vec![
                    s.path.clone(),
                    s.calls.to_string(),
                    s.allocs.to_string(),
                    fmt_bytes(s.alloc_bytes),
                    fmt_bytes(s.peak_live_bytes),
                ]
            })
            .collect();
        print_table(
            &format!(
                "MEM {} / {} — span-attributed heap",
                r.experiment, r.protocol
            ),
            &["span", "calls", "allocs", "alloc bytes", "peak live"],
            &rows,
        );
        println!(
            "totals: {} allocs / {} allocated · {} reallocs · peak live {}",
            r.mem.allocs,
            fmt_bytes(r.mem.alloc_bytes),
            r.mem.reallocs,
            fmt_bytes(r.mem.peak_live_bytes)
        );
    }
}

/// `trend --baseline A --current B [--threshold PCT] [--json] [--accept]`
/// or `trend --scaling [--scan PATH] [--min-n N] [--speedup PCT]
/// [--overhead PCT]`.
fn trend_cmd(args: &[String]) {
    let mut baseline: Option<&str> = None;
    let mut current: Option<&str> = None;
    let mut threshold = 5.0f64;
    let mut accept = false;
    let mut json = false;
    let mut scaling = false;
    let mut scan_path = "BENCH_pir_scan.json";
    let mut min_n = 4_096u64;
    let mut speedup_pct = 10.0f64;
    let mut overhead_pct = 10.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take_value = |flag: &str| {
            it.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        };
        let parse_num = |flag: &str, v: &str| -> f64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: {flag} needs a number");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(take_value("--baseline")),
            "--current" => current = Some(take_value("--current")),
            "--threshold" => threshold = parse_num("--threshold", take_value("--threshold")),
            "--accept" => accept = true,
            "--json" => json = true,
            "--scaling" => scaling = true,
            "--scan" => scan_path = take_value("--scan"),
            "--min-n" => min_n = parse_num("--min-n", take_value("--min-n")) as u64,
            "--speedup" => speedup_pct = parse_num("--speedup", take_value("--speedup")),
            "--overhead" => overhead_pct = parse_num("--overhead", take_value("--overhead")),
            other => {
                eprintln!("error: unknown trend argument `{other}`");
                eprintln!(
                    "usage: spfe-tables trend --baseline A --current B \
                     [--threshold PCT] [--json] [--accept]\n\
                     \x20      spfe-tables trend --scaling [--scan PATH] [--min-n N] \
                     [--speedup PCT] [--overhead PCT]"
                );
                std::process::exit(2);
            }
        }
    }
    if scaling {
        scaling_cmd(scan_path, min_n, speedup_pct, overhead_pct);
        return;
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        eprintln!(
            "usage: spfe-tables trend --baseline A --current B [--threshold PCT] \
             [--json] [--accept]\n\
             \x20      spfe-tables trend --scaling [--scan PATH] [--min-n N] \
             [--speedup PCT] [--overhead PCT]"
        );
        std::process::exit(2);
    };
    if accept {
        std::fs::copy(current, baseline).unwrap_or_else(|e| {
            eprintln!("error: copying {current} over {baseline}: {e}");
            std::process::exit(1);
        });
        println!("accepted: {current} is the new baseline at {baseline}");
        return;
    }
    let load = |path: &str| -> spfe_obs::Suite {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        });
        spfe_obs::parse_suite(&src).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        })
    };
    let base = load(baseline);
    let cur = load(current);
    let out = spfe_bench::trend::compare_suites(&base, &cur, threshold).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    if json {
        println!("{}", trend_json(&out, threshold));
        if !out.regressions.is_empty() {
            std::process::exit(1);
        }
        return;
    }
    println!(
        "trend: {} pair(s), {} metric(s) compared at threshold {threshold}%",
        out.pairs_compared, out.metrics_compared
    );
    for d in out
        .deltas
        .iter()
        .filter(|d| !d.gated && d.baseline != d.current)
    {
        println!(
            "  info {}/{} {}: {} -> {} (not gated)",
            d.experiment, d.protocol, d.metric, d.baseline, d.current
        );
    }
    if out.regressions.is_empty() {
        println!("trend: OK — no deterministic counter, comm byte, or heap total regressed");
        return;
    }
    for r in &out.regressions {
        eprintln!(
            "REGRESSION {}/{} {}: {} -> {} (+{:.1}%)",
            r.experiment,
            r.protocol,
            r.metric,
            r.baseline,
            r.current,
            r.pct()
        );
    }
    eprintln!(
        "trend: {} regression(s); rerun with `trend --accept` after committing \
         an intentional cost change (see EXPERIMENTS.md)",
        out.regressions.len()
    );
    std::process::exit(1);
}

/// `trend --scaling`: the parallel-scaling gate over `BENCH_pir_scan.json`
/// (see [`spfe_bench::trend::check_scaling`] for the hardware-aware rules).
fn scaling_cmd(scan_path: &str, min_n: u64, speedup_pct: f64, overhead_pct: f64) {
    use spfe_bench::trend::{check_scaling, parse_scan, ScalingRule};
    let src = std::fs::read_to_string(scan_path).unwrap_or_else(|e| {
        eprintln!("error: {scan_path}: {e}");
        std::process::exit(1);
    });
    let rows = parse_scan(&src).unwrap_or_else(|e| {
        eprintln!("error: {scan_path}: {e}");
        std::process::exit(1);
    });
    let verdicts = check_scaling(&rows, min_n, speedup_pct, overhead_pct).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let mut failed = 0usize;
    for v in &verdicts {
        let rule = match v.rule {
            ScalingRule::Speedup(pct) => format!("speedup ≥ {pct}% (cores ≥ threads)"),
            ScalingRule::OverheadBound(pct) => {
                format!(
                    "overhead ≤ {pct}% ({} core(s) < {} threads)",
                    v.cores, v.threads
                )
            }
        };
        let status = if v.pass { "ok  " } else { "FAIL" };
        println!(
            "scaling {status} n={}: {} threads {:.2}ms vs serial {:.2}ms — {:.2}x [{rule}]",
            v.n,
            v.threads,
            v.parallel_ns as f64 / 1e6,
            v.serial_ns as f64 / 1e6,
            v.speedup,
        );
        if !v.pass {
            failed += 1;
        }
    }
    if failed > 0 {
        eprintln!(
            "scaling: {failed} of {} size(s) failed the gate; \
             regenerate with `spfe-tables pir-scan` on quiet hardware \
             or investigate the pool (see EXPERIMENTS.md)",
            verdicts.len()
        );
        std::process::exit(1);
    }
    println!("scaling: OK — all {} size(s) passed", verdicts.len());
}

/// Renders a [`spfe_bench::trend::TrendReport`] as the `trend --json`
/// document: the verdict plus every per-(experiment, protocol) delta with
/// its gating status, in the hand-built style of the suite renderer.
fn trend_json(out: &spfe_bench::trend::TrendReport, threshold: f64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"spfe-trend-report/v1\",\n");
    s.push_str(&format!(
        "  \"verdict\": \"{}\",\n",
        if out.regressions.is_empty() {
            "ok"
        } else {
            "regressed"
        }
    ));
    s.push_str(&format!("  \"threshold_pct\": {threshold},\n"));
    s.push_str(&format!("  \"pairs_compared\": {},\n", out.pairs_compared));
    s.push_str(&format!(
        "  \"metrics_compared\": {},\n",
        out.metrics_compared
    ));
    s.push_str(&format!("  \"regressions\": {},\n", out.regressions.len()));
    s.push_str("  \"deltas\": [");
    for (i, d) in out.deltas.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let pct = d.pct();
        let pct_json = if pct.is_finite() {
            format!("{pct:.4}")
        } else {
            "null".to_owned()
        };
        s.push_str(&format!(
            "\n    {{\"experiment\": \"{}\", \"protocol\": \"{}\", \"metric\": \"{}\", \
             \"baseline\": {}, \"current\": {}, \"pct\": {}, \"gated\": {}, \"flagged\": {}}}",
            d.experiment, d.protocol, d.metric, d.baseline, d.current, pct_json, d.gated, d.flagged
        ));
    }
    s.push_str("\n  ]\n}");
    s
}

/// PIR-SCAN — the parallel kernel engine: serial vs worker-pool timing of
/// the server's Ω(n) column scan, together with the query/answer wire
/// sizes. Thread counts beyond the machine's core count are still measured
/// (they exercise the pool) but cannot speed anything up; the JSON is the
/// honest record either way. Emits `BENCH_pir_scan.json` in the current
/// directory alongside the Markdown table.
fn pir_scan() {
    use spfe::math::par;
    use spfe::pir::hom_pir::{self, Layout};
    use spfe::transport::Wire;
    use std::time::Instant;
    let mut b = Bench::new();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    // Recorded per row so the `trend --scaling` gate can tell real
    // non-scaling from a machine that physically cannot run the threads.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for n in [256usize, 1_024, 4_096] {
        let db = make_db(n, 1_000);
        let layout = Layout::square(n);
        let q = hom_pir::client_query(&b.pk, &layout, n / 2, &mut b.rng);
        let bytes_up = q.to_bytes().len();
        let baseline = hom_pir::server_answer(&b.pk, &layout, &db, &q).unwrap();
        let bytes_down = hom_pir::answer_to_wire(&b.pk, &baseline).to_bytes().len();
        for threads in [1usize, 4] {
            par::set_threads(Some(threads));
            // Warm-up rep that doubles as the determinism check: the scan
            // must be bit-identical at every thread count.
            let ans = hom_pir::server_answer(&b.pk, &layout, &db, &q).unwrap();
            assert_eq!(ans, baseline, "scan result depends on thread count");
            let reps: u32 = if n <= 1_024 { 5 } else { 3 };
            let start = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(hom_pir::server_answer(&b.pk, &layout, &db, &q).unwrap());
            }
            let ns_per_query = (start.elapsed().as_nanos() / u128::from(reps)) as u64;
            par::set_threads(None);
            rows.push(vec![
                n.to_string(),
                threads.to_string(),
                fmt_dur(std::time::Duration::from_nanos(ns_per_query)),
                fmt_bytes(bytes_up as u64),
                fmt_bytes(bytes_down as u64),
            ]);
            json.push(format!(
                "{{\"n\":{n},\"threads\":{threads},\"cores\":{cores},\
                 \"ns_per_query\":{ns_per_query},\
                 \"bytes_up\":{bytes_up},\"bytes_down\":{bytes_down}}}"
            ));
        }
    }
    print_table(
        "PIR-SCAN — server column scan, serial vs worker pool",
        &["n", "threads", "time/query", "up", "down"],
        &rows,
    );
    let payload = format!("[\n  {}\n]\n", json.join(",\n  "));
    std::fs::write("BENCH_pir_scan.json", payload).expect("write BENCH_pir_scan.json");
    println!("\nwrote BENCH_pir_scan.json ({} entries)", json.len());
}

/// E12 — the SPIR black box (§1.2): the same SPFE protocol costed under
/// the real SPIR instantiation vs the idealized information-flow model,
/// decomposing the cost into "the SPIR term" vs protocol overhead.
fn e12_spir_blackbox() {
    use spfe::math::RandomSource;
    use spfe::pir::{HomSpir, IdealSpir, SpirOracle};
    let mut b = Bench::new();
    let n = 1_024;
    let db = make_db(n, 500);
    let field = field_for(n, 8, 500);
    let real = HomSpir::with_keys(b.group.clone(), b.pk.clone(), b.sk.clone());
    let ideal = IdealSpir::default();
    let mut rows = Vec::new();
    for m in [2usize, 4, 8] {
        let indices = make_indices(n, m);
        let mut cells = vec![m.to_string()];
        for (oname, oracle) in [
            ("real", &real as &dyn SpirOracle),
            ("ideal", &ideal as &dyn SpirOracle),
        ] {
            let mut rng = spfe::crypto::ChaChaRng::from_u64_seed(0xE12);
            let meas = measure_as("e12", &format!("select1-{oname}+yao m={m}"), 1, |t| {
                let shares = spfe::core::input_select::select1_with_oracle(
                    t, oracle, &db, &indices, field, &mut rng,
                )
                .unwrap();
                let got =
                    two_phase::yao_phase(t, &b.group, &shares, &Statistic::Sum, &mut rng).unwrap();
                let expect = indices
                    .iter()
                    .fold(0u64, |a, &i| (a + db[i]) % field.modulus());
                assert_eq!(got[0], expect);
            });
            let _ = &mut b.rng as &mut dyn RandomSource;
            cells.push(fmt_bytes(meas.comm.total_bytes()));
        }
        let spir_share = {
            // Fraction of the real run attributable to the SPIR black box.
            let mut rng = spfe::crypto::ChaChaRng::from_u64_seed(0xE12);
            let real_m = measure_as("e12", &format!("select-only-real m={m}"), 1, |t| {
                spfe::core::input_select::select1_with_oracle(
                    t, &real, &db, &indices, field, &mut rng,
                )
                .unwrap();
            });
            let mut rng = spfe::crypto::ChaChaRng::from_u64_seed(0xE12);
            let ideal_m = measure_as("e12", &format!("select-only-ideal m={m}"), 1, |t| {
                spfe::core::input_select::select1_with_oracle(
                    t, &ideal, &db, &indices, field, &mut rng,
                )
                .unwrap();
            });
            format!(
                "{:.0}%",
                100.0 * (real_m.comm.total_bytes() - ideal_m.comm.total_bytes()) as f64
                    / real_m.comm.total_bytes() as f64
            )
        };
        cells.push(spir_share);
        rows.push(cells);
    }
    print_table(
        &format!("E12 / SPIR as a black box — §3.3.1+Yao sum, n = {n}"),
        &[
            "m",
            "real SPIR total",
            "ideal-SPIR total",
            "share of cost in the SPIR box",
        ],
        &rows,
    );
}

/// E11 — PIR recursion ablation (\[32\]'s recursion; DESIGN.md §6): the
/// depth-2 `(F·n)^{1/3}` scheme vs the depth-1 `√n` scheme.
fn e11_recursion() {
    let mut b = Bench::new();
    let mut rows = Vec::new();
    for n in [1_024usize, 8_192, 65_536] {
        let db = make_db(n, 1_000);
        let idx = n / 2;
        let sqrt = measure_as("e11", &format!("hompir n={n}"), 1, |t| {
            assert_eq!(
                pir::hom_pir::run(t, &b.pk, &b.sk, &db, idx, &mut b.rng).unwrap(),
                db[idx]
            );
        });
        let rec = measure_as("e11", &format!("recursive n={n}"), 1, |t| {
            assert_eq!(
                pir::recursive::run(t, &b.pk, &b.sk, &db, idx, &mut b.rng).unwrap(),
                db[idx]
            );
        });
        rows.push(vec![
            n.to_string(),
            format!(
                "{} ({})",
                fmt_bytes(sqrt.comm.total_bytes()),
                fmt_dur(sqrt.elapsed)
            ),
            format!(
                "{} ({})",
                fmt_bytes(rec.comm.total_bytes()),
                fmt_dur(rec.elapsed)
            ),
            format!(
                "{:.2}x",
                sqrt.comm.total_bytes() as f64 / rec.comm.total_bytes() as f64
            ),
        ]);
    }
    print_table(
        "E11 / PIR recursion ablation — depth-1 (√n) vs depth-2 ((F·n)^{1/3})",
        &[
            "n",
            "sqrt scheme (bytes, time)",
            "recursive (bytes, time)",
            "comm saving",
        ],
        &rows,
    );
}

fn meta_cells(meta: &ProtocolMeta, m: &Measurement) -> Vec<String> {
    vec![
        meta.section.to_string(),
        format!("{}", m.comm.rounds()),
        meta.rounds_str(),
        fmt_bytes(m.comm.client_to_server),
        fmt_bytes(m.comm.server_to_client),
        fmt_bytes(m.comm.total_bytes()),
        fmt_dur(m.elapsed),
        meta.security.to_string(),
        if meta.arithmetic_scalable {
            "yes"
        } else {
            "no"
        }
        .to_string(),
        meta.complexity.to_string(),
    ]
}

/// E1 — Table 1: the four single-server constructions (plus §3.2) at a
/// fixed workload.
fn e1_table1() {
    let mut b = Bench::new();
    let n = 1_024;
    let m = 4;
    let db = make_db(n, 256);
    let indices = make_indices(n, m);
    let truth: u64 = indices.iter().map(|&i| db[i]).sum();
    let field = field_for(n, m, 256);
    let mut rows = Vec::new();

    let circuit = sum_circuit(m, 8);
    let meas = measure_as("e1", "psm-yao", 1, |t| {
        let got = psm_spfe::run_yao_psm(
            t, &b.group, &b.pk, &b.sk, &db, &indices, &circuit, 8, &mut b.rng,
        )
        .unwrap();
        assert_eq!(got, truth);
    });
    rows.push(meta_cells(&table1::PSM, &meas));

    let meas = measure_as("e1", "select1+yao", 1, |t| {
        let got = two_phase::run_select1_yao(
            t,
            &b.group,
            &b.pk,
            &b.sk,
            &db,
            &indices,
            &Statistic::Sum,
            field,
            &mut b.rng,
        )
        .unwrap();
        assert_eq!(got[0], truth % field.modulus());
    });
    rows.push(meta_cells(&table1::SELECT1, &meas));

    let meas = measure_as("e1", "select2v1+yao", 1, |t| {
        let got = two_phase::run_select2v1_yao(
            t,
            &b.group,
            &b.pk,
            &b.sk,
            &db,
            &indices,
            &Statistic::Sum,
            field,
            &mut b.rng,
        )
        .unwrap();
        assert_eq!(got[0], truth % field.modulus());
    });
    rows.push(meta_cells(&table1::SELECT2_V1, &meas));

    let meas = measure_as("e1", "select2v2+yao", 1, |t| {
        let got = two_phase::run_select2v2_yao(
            t,
            &b.group,
            &b.pk,
            &b.sk,
            &b.spk,
            &b.ssk,
            &db,
            &indices,
            &Statistic::Sum,
            field,
            &mut b.rng,
        )
        .unwrap();
        assert_eq!(got[0], truth % field.modulus());
    });
    rows.push(meta_cells(&table1::SELECT2_V2, &meas));

    let meas = measure_as("e1", "select3+arith", 1, |t| {
        let got = two_phase::run_select3_arith(
            t,
            &b.group,
            &b.pk,
            &b.sk,
            &b.spk,
            &b.ssk,
            &db,
            &indices,
            &Statistic::Sum,
            &mut b.rng,
        )
        .unwrap();
        assert_eq!(got[0].to_u64().unwrap(), truth);
    });
    rows.push(meta_cells(&table1::SELECT3, &meas));

    print_table(
        &format!("E1 / Table 1 — single-server SPFE, f = sum, n = {n}, m = {m}"),
        &[
            "section",
            "rounds",
            "(paper)",
            "up",
            "down",
            "total",
            "time",
            "security",
            "arith?",
            "paper complexity",
        ],
        &rows,
    );
}

/// E2 — Theorem 2: servers and communication of the §3.1 protocol.
fn e2_theorem2() {
    let mut b = Bench::new();
    let mut rows = Vec::new();
    for n in [256usize, 4_096, 65_536] {
        for t_priv in [1usize, 2] {
            let m = 4;
            let db = make_db(n, 1_000);
            let indices = make_indices(n, m);
            let field = field_for(n, m, 1_000);
            let params = MultiServerParams::new(n, t_priv, field, MsFunction::Sum { m });
            let k = params.num_servers();
            let truth: u64 = indices.iter().map(|&i| db[i]).sum();
            let meas = measure_as("e2", &format!("multiserver n={n} t={t_priv}"), k, |t| {
                let got = multiserver::run(t, &params, &db, &indices, Some(7), &mut b.rng).unwrap();
                assert_eq!(got, truth % field.modulus());
            });
            let ell = index_bits(n);
            rows.push(vec![
                n.to_string(),
                t_priv.to_string(),
                format!("{k} (= t·log₂n+1 = {})", t_priv * ell + 1),
                fmt_bytes(meas.comm.total_bytes()),
                fmt_bytes(meas.comm.server_to_client / k as u64),
                format!("{}", meas.comm.rounds()),
                fmt_dur(meas.elapsed),
            ]);
        }
    }
    print_table(
        "E2 / Theorem 2 — multi-server SPFE (f = sum, m = 4, s = 1)",
        &[
            "n",
            "t",
            "servers k",
            "total comm",
            "per-server down",
            "rounds",
            "time",
        ],
        &rows,
    );
}

/// E3 — Example 1 & Corollary 4: PSM communication components.
fn e3_psm() {
    let mut rows = Vec::new();
    for m in [2usize, 4, 8, 16] {
        // Sum PSM: α = one field element, β = 0.
        let seed = [3u8; 32];
        let msg = psm::sum::player_message(0, m, 123, 1 << 20, seed);
        let _ = msg;
        // Yao PSM over the m-input 8-bit sum circuit.
        let circuit = sum_circuit(m, 8);
        let p0 = psm::yao::p0_message(&circuit, seed);
        let beta = spfe::mpc::garble::garbled_size(&p0) as u64;
        let alpha = 8 * spfe::mpc::garble::LABEL_LEN as u64; // 8 bits·κ
        rows.push(vec![
            m.to_string(),
            "8 B / 0 B".to_string(),
            format!("{} / {}", fmt_bytes(alpha), fmt_bytes(beta)),
            circuit.size().to_string(),
        ]);
    }
    print_table(
        "E3 / Example 1 + Corollary 4 — PSM communication (α per player / β extra)",
        &["m", "sum-PSM (α/β)", "Yao-PSM (α/β)", "C_f (gates)"],
        &rows,
    );
}

/// E4 + E5 — the three input-selection protocols across m.
fn e4_e5_input_selection() {
    let mut b = Bench::new();
    let n = 1_024;
    let db = make_db(n, 500);
    let field = field_for(n, 32, 500);
    let mut rows = Vec::new();
    for m in [2usize, 4, 8, 16] {
        let indices = make_indices(n, m);
        let check = |shares: &input_select::SharesModP| {
            let rec = shares.reconstruct();
            for (r, &i) in rec.iter().zip(&indices) {
                assert_eq!(*r, db[i]);
            }
        };

        let m1 = measure_as("e4", &format!("select1 m={m}"), 1, |t| {
            let s =
                input_select::select1(t, &b.group, &b.pk, &b.sk, &db, &indices, field, &mut b.rng)
                    .unwrap();
            check(&s);
        });
        let m2 = measure_as("e4", &format!("select2v1 m={m}"), 1, |t| {
            let s = input_select::select2_v1(
                t, &b.group, &b.pk, &b.sk, &db, &indices, field, &mut b.rng,
            )
            .unwrap();
            check(&s);
        });
        let m3 = measure_as("e4", &format!("select2v2 m={m}"), 1, |t| {
            let s = input_select::select2_v2(
                t, &b.group, &b.pk, &b.sk, &b.spk, &b.ssk, &db, &indices, field, &mut b.rng,
            )
            .unwrap();
            check(&s);
        });
        let m4 = measure_as("e4", &format!("select3 m={m}"), 1, |t| {
            let s = input_select::select3(
                t, &b.group, &b.pk, &b.sk, &b.spk, &b.ssk, &db, &indices, 16, &mut b.rng,
            )
            .unwrap();
            let rec = s.reconstruct();
            for (r, &i) in rec.iter().zip(&indices) {
                assert_eq!(r.to_u64().unwrap(), db[i]);
            }
        });
        rows.push(vec![
            m.to_string(),
            format!(
                "{} ({})",
                fmt_bytes(m1.comm.total_bytes()),
                fmt_dur(m1.elapsed)
            ),
            format!(
                "{} ({})",
                fmt_bytes(m2.comm.total_bytes()),
                fmt_dur(m2.elapsed)
            ),
            format!(
                "{} ({})",
                fmt_bytes(m3.comm.total_bytes()),
                fmt_dur(m3.elapsed)
            ),
            format!(
                "{} ({})",
                fmt_bytes(m4.comm.total_bytes()),
                fmt_dur(m4.elapsed)
            ),
        ]);
    }
    print_table(
        &format!("E4+E5 / §3.3 input selection — total bytes (time), n = {n}"),
        &[
            "m",
            "§3.3.1 m×SPIR",
            "§3.3.2 v1 (κm²)",
            "§3.3.2 v2 (κm)",
            "§3.3.3 enc-db",
        ],
        &rows,
    );
}

/// E6 — the §4 weighted-sum protocol across n, against the linear baseline.
fn e6_weighted_sum() {
    let mut b = Bench::new();
    let m = 4;
    let mut rows = Vec::new();
    for n in [1_024usize, 4_096, 16_384, 65_536] {
        let db = make_db(n, 1_000);
        let indices = make_indices(n, m);
        let weights = vec![1u64, 2, 3, 4];
        let field = field_for(n, 10 * m, 1_000);
        let truth: u64 = indices.iter().zip(&weights).map(|(&i, &w)| db[i] * w).sum();
        let meas = measure_as("e6", &format!("weighted-sum n={n}"), 1, |t| {
            let got = stats::weighted_sum(
                t, &b.group, &b.pk, &b.sk, &db, &indices, &weights, field, &mut b.rng,
            )
            .unwrap();
            assert_eq!(got, truth % field.modulus());
        });
        let buy = baseline::buy_cost_bytes(n, 64);
        rows.push(vec![
            n.to_string(),
            fmt_bytes(meas.comm.total_bytes()),
            format!("{}", meas.comm.rounds()),
            fmt_dur(meas.elapsed),
            fmt_bytes(buy),
            format!("{:.1}x", buy as f64 / meas.comm.total_bytes() as f64),
        ]);
    }
    print_table(
        "E6 / §4 weighted sum — 1-round protocol vs shipping the database (m = 4)",
        &[
            "n",
            "SPFE bytes",
            "rounds",
            "time",
            "buy-db bytes",
            "saving",
        ],
        &rows,
    );
}

/// E7 — the average+variance package vs two independent runs.
fn e7_package() {
    let mut b = Bench::new();
    let n = 4_096;
    let m = 4;
    let db = make_db(n, 300);
    let sq: Vec<u64> = db.iter().map(|&v| v * v).collect();
    let indices = make_indices(n, m);
    let field = field_for(n, m, 90_000);

    let pkg = measure_as("e7", "avg-var package", 1, |t| {
        let (s, ss) = stats::average_and_variance(
            t, &b.group, &b.pk, &b.sk, &db, &sq, &indices, field, &mut b.rng,
        )
        .unwrap();
        let es: u64 = indices.iter().map(|&i| db[i]).sum();
        let ess: u64 = indices.iter().map(|&i| sq[i]).sum();
        assert_eq!((s, ss), (es, ess));
    });
    let two = measure_as("e7", "two weighted-sum runs", 1, |t| {
        let w = vec![1u64; m];
        stats::weighted_sum(
            t, &b.group, &b.pk, &b.sk, &db, &indices, &w, field, &mut b.rng,
        )
        .unwrap();
        stats::weighted_sum(
            t, &b.group, &b.pk, &b.sk, &sq, &indices, &w, field, &mut b.rng,
        )
        .unwrap();
    });
    print_table(
        &format!("E7 / §4 average+variance package, n = {n}, m = {m}"),
        &["approach", "up", "down", "total", "rounds", "time"],
        &[
            vec![
                "package (1 query, 2 answers)".into(),
                fmt_bytes(pkg.comm.client_to_server),
                fmt_bytes(pkg.comm.server_to_client),
                fmt_bytes(pkg.comm.total_bytes()),
                format!("{}", pkg.comm.rounds()),
                fmt_dur(pkg.elapsed),
            ],
            vec![
                "two independent sum runs".into(),
                fmt_bytes(two.comm.client_to_server),
                fmt_bytes(two.comm.server_to_client),
                fmt_bytes(two.comm.total_bytes()),
                format!("{}", two.comm.rounds()),
                fmt_dur(two.elapsed),
            ],
        ],
    );
}

/// E8 — §4 frequency: tailored protocol vs the generic Yao route.
fn e8_frequency() {
    let mut b = Bench::new();
    let n = 1_024;
    let db = make_db(n, 50);
    let field = field_for(n, 16, 50);
    let keyword = db[7];
    let mut rows = Vec::new();
    for m in [4usize, 8, 16] {
        let indices = make_indices(n, m);
        let truth = indices.iter().filter(|&&i| db[i] == keyword).count() as u64;
        let tailored = measure_as("e8", &format!("frequency-tailored m={m}"), 1, |t| {
            let shares =
                input_select::select1(t, &b.group, &b.pk, &b.sk, &db, &indices, field, &mut b.rng)
                    .unwrap();
            let got = stats::frequency(t, &b.pk, &b.sk, &shares, keyword, &mut b.rng).unwrap();
            assert_eq!(got, truth);
        });
        let generic = measure_as("e8", &format!("frequency-generic m={m}"), 1, |t| {
            let got = two_phase::run_select1_yao(
                t,
                &b.group,
                &b.pk,
                &b.sk,
                &db,
                &indices,
                &Statistic::Frequency { keyword },
                field,
                &mut b.rng,
            )
            .unwrap();
            assert_eq!(got[0], truth);
        });
        rows.push(vec![
            m.to_string(),
            format!(
                "{} ({})",
                fmt_bytes(tailored.comm.total_bytes()),
                fmt_dur(tailored.elapsed)
            ),
            format!(
                "{} ({})",
                fmt_bytes(generic.comm.total_bytes()),
                fmt_dur(generic.elapsed)
            ),
            format!(
                "{:.2}x",
                generic.comm.total_bytes() as f64 / tailored.comm.total_bytes() as f64
            ),
        ]);
    }
    print_table(
        &format!("E8 / §4 frequency counting, n = {n}"),
        &[
            "m",
            "tailored §4 (bytes, time)",
            "generic Yao route",
            "generic/tailored",
        ],
        &rows,
    );
}

/// E9 — sublinearity crossover: SPFE vs linear baselines across n.
fn e9_crossover() {
    let mut b = Bench::new();
    let m = 4;
    let mut rows = Vec::new();
    for n in [256usize, 1_024, 4_096, 16_384, 65_536] {
        let db = make_db(n, 60);
        let indices = make_indices(n, m);
        let field = field_for(n, m, 60);
        let truth: u64 = indices.iter().map(|&i| db[i]).sum();
        let spfe = measure_as("e9", &format!("weighted-sum n={n}"), 1, |t| {
            let got = stats::weighted_sum(
                t,
                &b.group,
                &b.pk,
                &b.sk,
                &db,
                &indices,
                &[1, 1, 1, 1],
                field,
                &mut b.rng,
            )
            .unwrap();
            assert_eq!(got, truth);
        });
        let buy = baseline::buy_cost_bytes(n, 64);
        let yao = baseline::generic_yao_cost_estimate(n, m, 6);
        let spfe_b = spfe.comm.total_bytes();
        rows.push(vec![
            n.to_string(),
            fmt_bytes(spfe_b),
            fmt_bytes(buy),
            fmt_bytes(yao),
            if spfe_b < buy && spfe_b < yao {
                "SPFE"
            } else if buy <= yao {
                "buy-db"
            } else {
                "Yao"
            }
            .to_string(),
        ]);
    }
    print_table(
        "E9 / sublinearity crossover — weighted sum (m = 4) vs linear baselines",
        &[
            "n",
            "SPFE (measured)",
            "buy-db (n·8B)",
            "generic Yao (κ·n)",
            "cheapest",
        ],
        &rows,
    );
}

/// E10 — batched SPIR(n, m) vs m independent SPIR(n, 1): the footnote-2
/// claim, in communication and server computation.
fn e10_batched() {
    let mut b = Bench::new();
    let n = 4_096;
    let db = make_db(n, 1_000);
    let mut rows = Vec::new();
    for m in [2usize, 4, 8, 16, 32] {
        let indices = make_indices(n, m);
        let batched = measure_as("e10", &format!("batched m={m}"), 1, |t| {
            let (vals, stats) =
                pir::batched::run(t, &b.group, &b.pk, &b.sk, &db, &indices, &mut b.rng).unwrap();
            assert_eq!(stats.fallbacks, 0, "m={m}");
            for (v, &i) in vals.iter().zip(&indices) {
                assert_eq!(*v, db[i]);
            }
        });
        let params = pir::SpirParams::new(b.group.clone(), n);
        let indep = measure_as("e10", &format!("independent-spir m={m}"), 1, |t| {
            for &i in &indices {
                let got = pir::spir::run(t, &params, &b.pk, &b.sk, &db, i, &mut b.rng).unwrap();
                assert_eq!(got, db[i]);
            }
        });
        rows.push(vec![
            m.to_string(),
            format!(
                "{} ({})",
                fmt_bytes(batched.comm.total_bytes()),
                fmt_dur(batched.elapsed)
            ),
            format!(
                "{} ({})",
                fmt_bytes(indep.comm.total_bytes()),
                fmt_dur(indep.elapsed)
            ),
            format!(
                "{:.2}x / {:.2}x",
                indep.comm.total_bytes() as f64 / batched.comm.total_bytes() as f64,
                indep.elapsed.as_secs_f64() / batched.elapsed.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    print_table(
        &format!("E10 / batched SPIR(n,m) vs m × SPIR(n,1), n = {n}"),
        &[
            "m",
            "batched (bytes, time)",
            "independent",
            "savings (comm / time)",
        ],
        &rows,
    );
}
