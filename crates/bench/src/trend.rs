//! The cost-trend regression gate: compare two cost-report suites.
//!
//! The workspace's determinism contract (DESIGN.md §8) makes this gate
//! noise-free: deterministic op counters and metered comm bytes are
//! bit-identical across reruns, thread counts, and fault seeds, so any
//! delta between a committed baseline `BENCH_costs.json` and a fresh run
//! is a real change in protocol cost. [`compare_suites`] flags every
//! metric that grew past a percentage threshold; `spfe-tables trend`
//! turns the result into an exit code for CI.
//!
//! Wall-clock times and scheduler/fault gauges are deliberately *not*
//! compared — they vary run to run and would make the gate flaky.
//!
//! The heap axis (schema v3) joins the gate with its own rules: at
//! `threads == 1` on both sides, `mem:allocs` and `mem:alloc_bytes` are
//! deterministic (DESIGN.md §12) and gate like op counters — but only
//! when the baseline actually carries heap data (`mem.allocs > 0`), so a
//! v3 baseline produced without `obs-alloc` never flags an instrumented
//! run. `mem:peak_live_bytes` is reported in [`TrendReport::deltas`] but
//! never gated: the high-water mark depends on allocator reuse and, at
//! `SPFE_THREADS > 1`, on scheduling.

use spfe_obs::{CostReport, Suite};
use std::collections::BTreeMap;

/// One metric that regressed past the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Experiment id of the offending report.
    pub experiment: String,
    /// Protocol variant of the offending report.
    pub protocol: String,
    /// Metric name (`op:<name>`, `comm:<direction>_bytes`, or `mem:<field>`).
    pub metric: String,
    /// Baseline value.
    pub baseline: u64,
    /// Current value.
    pub current: u64,
}

impl Regression {
    /// Percentage growth over baseline (`inf` when the baseline is 0).
    pub fn pct(&self) -> f64 {
        pct(self.baseline, self.current)
    }
}

/// One metric comparison, whether or not it flagged — the full record
/// behind `spfe-tables trend --json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Experiment id of the compared report.
    pub experiment: String,
    /// Protocol variant of the compared report.
    pub protocol: String,
    /// Metric name (`op:<name>`, `comm:<direction>_bytes`, or `mem:<field>`).
    pub metric: String,
    /// Baseline value.
    pub baseline: u64,
    /// Current value.
    pub current: u64,
    /// Whether this metric participates in the gate. Informational
    /// metrics (`mem:peak_live_bytes`, heap counters outside the
    /// single-thread regime) are reported but can never flag.
    pub gated: bool,
    /// Whether this metric grew past the threshold *and* is gated.
    pub flagged: bool,
}

impl Delta {
    /// Percentage growth over baseline (`inf` when the baseline is 0,
    /// negative when the metric shrank).
    pub fn pct(&self) -> f64 {
        pct(self.baseline, self.current)
    }
}

fn pct(baseline: u64, current: u64) -> f64 {
    if baseline == 0 {
        if current == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (current as f64 - baseline as f64) / baseline as f64
    }
}

/// Outcome of a baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendReport {
    /// `(experiment, protocol)` pairs present in both suites.
    pub pairs_compared: usize,
    /// Individual *gated* metric comparisons performed (informational
    /// deltas are excluded so the gate's coverage figure stays honest).
    pub metrics_compared: usize,
    /// Metrics that grew more than the threshold, in report order.
    pub regressions: Vec<Regression>,
    /// Every comparison performed, flagged or not, in report order.
    pub deltas: Vec<Delta>,
}

/// The metrics the gate covers for one report: every *deterministic* op
/// counter plus the two comm byte totals. Missing ops count as 0, so an
/// op appearing only in one suite is still compared.
fn metrics(report: &CostReport) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for s in &report.ops {
        if s.op.deterministic() {
            out.insert(format!("op:{}", s.op.name()), s.count);
        }
    }
    out.insert("comm:up_bytes".into(), report.comm.up_bytes);
    out.insert("comm:down_bytes".into(), report.comm.down_bytes);
    out
}

/// The heap metrics for one pair of reports: `(metric, baseline, current,
/// gated)`. Emitted only when either side carries heap data at all, so
/// pre-v3 baselines and non-`obs-alloc` runs produce no `mem:` rows.
fn mem_metrics(
    baseline: &Suite,
    base: &CostReport,
    current: &Suite,
    cur: &CostReport,
) -> Vec<(&'static str, u64, u64, bool)> {
    if base.mem.allocs == 0 && cur.mem.allocs == 0 {
        return Vec::new();
    }
    // Alloc count/bytes are deterministic only in the single-thread
    // regime, and comparing an instrumented run against an uninstrumented
    // baseline (allocs == 0) would always flag; outside that regime the
    // rows are informational.
    let gate = baseline.threads == 1 && current.threads == 1 && base.mem.allocs > 0;
    vec![
        ("mem:allocs", base.mem.allocs, cur.mem.allocs, gate),
        (
            "mem:alloc_bytes",
            base.mem.alloc_bytes,
            cur.mem.alloc_bytes,
            gate,
        ),
        // The high-water mark depends on allocator reuse: never gated.
        (
            "mem:peak_live_bytes",
            base.mem.peak_live_bytes,
            cur.mem.peak_live_bytes,
            false,
        ),
    ]
}

/// Compares `current` against `baseline`, flagging every deterministic
/// counter or comm byte total that grew more than `threshold_pct` percent
/// (a metric going from 0 to nonzero always flags). Shrinking is never a
/// regression. Heap counters join the gate under the conditions in the
/// module docs; every comparison — gated or informational — is recorded
/// in [`TrendReport::deltas`].
///
/// # Errors
///
/// When the suites share no `(experiment, protocol)` pair — a gate that
/// compares nothing must fail loudly rather than pass vacuously.
pub fn compare_suites(
    baseline: &Suite,
    current: &Suite,
    threshold_pct: f64,
) -> Result<TrendReport, String> {
    let mut rep = TrendReport {
        pairs_compared: 0,
        metrics_compared: 0,
        regressions: Vec::new(),
        deltas: Vec::new(),
    };
    for cur in &current.reports {
        let Some(base) = baseline.find(&cur.experiment, &cur.protocol) else {
            continue;
        };
        rep.pairs_compared += 1;
        let base_metrics = metrics(base);
        let cur_metrics = metrics(cur);
        let mut keys: Vec<&String> = base_metrics.keys().chain(cur_metrics.keys()).collect();
        keys.sort();
        keys.dedup();
        let mut rows: Vec<(String, u64, u64, bool)> = keys
            .into_iter()
            .map(|key| {
                let b = base_metrics.get(key).copied().unwrap_or(0);
                let c = cur_metrics.get(key).copied().unwrap_or(0);
                (key.clone(), b, c, true)
            })
            .collect();
        rows.extend(
            mem_metrics(baseline, base, current, cur)
                .into_iter()
                .map(|(k, b, c, gated)| (k.to_owned(), b, c, gated)),
        );
        for (metric, b, c, gated) in rows {
            if gated {
                rep.metrics_compared += 1;
            }
            let budget = b as f64 * (1.0 + threshold_pct / 100.0);
            let flagged = gated && c as f64 > budget;
            if flagged {
                rep.regressions.push(Regression {
                    experiment: cur.experiment.clone(),
                    protocol: cur.protocol.clone(),
                    metric: metric.clone(),
                    baseline: b,
                    current: c,
                });
            }
            rep.deltas.push(Delta {
                experiment: cur.experiment.clone(),
                protocol: cur.protocol.clone(),
                metric,
                baseline: b,
                current: c,
                gated,
                flagged,
            });
        }
    }
    if rep.pairs_compared == 0 {
        return Err(format!(
            "no (experiment, protocol) pair in common: baseline has {} report(s), \
             current has {} — nothing to compare",
            baseline.reports.len(),
            current.reports.len()
        ));
    }
    Ok(rep)
}

// ---------------------------------------------------------------------------
// The parallel-scaling gate: `spfe-tables trend --scaling`.
// ---------------------------------------------------------------------------

/// One measurement row of `BENCH_pir_scan.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanRow {
    /// Database size.
    pub n: u64,
    /// Worker-pool thread count the row was measured at.
    pub threads: u64,
    /// Wall time per scan.
    pub ns_per_query: u64,
    /// CPU cores available on the measuring machine (0 = unknown — rows
    /// written before the field existed).
    pub cores: u64,
}

/// Which rule [`check_scaling`] applied to a size, decided by the
/// hardware the rows were measured on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalingRule {
    /// `cores ≥ threads`: the pool has real parallel hardware, so the
    /// multi-thread scan must beat serial by at least this percentage.
    Speedup(f64),
    /// `cores < threads` (including unknown cores): no speedup is
    /// physically possible, so the gate degrades to an overhead bound —
    /// the pool must cost at most this percentage over serial.
    OverheadBound(f64),
}

/// One size's verdict from [`check_scaling`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingVerdict {
    /// Database size.
    pub n: u64,
    /// Thread count of the parallel row.
    pub threads: u64,
    /// Cores recorded for the parallel row.
    pub cores: u64,
    /// Serial (threads = 1) wall time.
    pub serial_ns: u64,
    /// Parallel wall time.
    pub parallel_ns: u64,
    /// `serial / parallel` (> 1 means the pool won).
    pub speedup: f64,
    /// The rule this size was held to.
    pub rule: ScalingRule,
    /// Whether the rule was satisfied.
    pub pass: bool,
}

/// Parses the `BENCH_pir_scan.json` array into [`ScanRow`]s. Rows without
/// a `cores` field (pre-gate baselines) parse with `cores = 0`.
///
/// # Errors
///
/// On malformed JSON or a row missing `n` / `threads` / `ns_per_query`.
pub fn parse_scan(src: &str) -> Result<Vec<ScanRow>, String> {
    let doc = spfe_obs::json::parse(src)?;
    let arr = doc.as_arr().ok_or("scan file: expected a JSON array")?;
    arr.iter()
        .enumerate()
        .map(|(i, row)| {
            let field = |key: &str| {
                row.get(key)
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| format!("scan row {i}: missing or non-integer `{key}`"))
            };
            Ok(ScanRow {
                n: field("n")?,
                threads: field("threads")?,
                ns_per_query: field("ns_per_query")?,
                cores: row.get("cores").and_then(|v| v.as_u64()).unwrap_or(0),
            })
        })
        .collect()
}

/// The parallel-scaling gate over a set of [`ScanRow`]s: for every size
/// `n ≥ min_n` that has both a serial and a multi-thread row, require
///
/// * **speedup ≥ `min_speedup_pct`** when the rows were measured on a
///   machine with at least as many cores as pool threads (the CI rule:
///   4 threads must beat 1 by ≥ 10% at n ≥ 4096), or
/// * **overhead ≤ `max_overhead_pct`** when the machine cannot run the
///   threads concurrently (`cores < threads`) — a single-core box can
///   never show a speedup, but the persistent pool must still be close to
///   free, which is exactly the property the spawn-per-call engine lacked.
///
/// Wall-clock is inherently noisy, which is why this gate (unlike the
/// deterministic counter gate) only runs against sizes big enough for the
/// signal to dominate and with a generous threshold.
///
/// # Errors
///
/// When no size `≥ min_n` has both a serial and a parallel row — a gate
/// that checks nothing must fail loudly.
pub fn check_scaling(
    rows: &[ScanRow],
    min_n: u64,
    min_speedup_pct: f64,
    max_overhead_pct: f64,
) -> Result<Vec<ScalingVerdict>, String> {
    let mut verdicts = Vec::new();
    let mut sizes: Vec<u64> = rows.iter().map(|r| r.n).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for n in sizes.into_iter().filter(|&n| n >= min_n) {
        let serial = rows.iter().find(|r| r.n == n && r.threads == 1);
        let parallel = rows.iter().find(|r| r.n == n && r.threads > 1);
        let (Some(s), Some(p)) = (serial, parallel) else {
            continue;
        };
        let speedup = s.ns_per_query as f64 / (p.ns_per_query as f64).max(1.0);
        let (rule, pass) = if p.cores >= p.threads {
            let rule = ScalingRule::Speedup(min_speedup_pct);
            (rule, speedup >= 1.0 + min_speedup_pct / 100.0)
        } else {
            let rule = ScalingRule::OverheadBound(max_overhead_pct);
            (rule, speedup >= 1.0 / (1.0 + max_overhead_pct / 100.0))
        };
        verdicts.push(ScalingVerdict {
            n,
            threads: p.threads,
            cores: p.cores,
            serial_ns: s.ns_per_query,
            parallel_ns: p.ns_per_query,
            speedup,
            rule,
            pass,
        });
    }
    if verdicts.is_empty() {
        return Err(format!(
            "no size ≥ {min_n} with both a serial and a parallel row — \
             regenerate the scan file (`spfe-tables pir-scan`)"
        ));
    }
    Ok(verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_obs::{CommStat, MemStat, Op, OpStat};

    fn report(experiment: &str, protocol: &str, modexps: u64, up: u64) -> CostReport {
        CostReport {
            experiment: experiment.into(),
            protocol: protocol.into(),
            elapsed_ns: 1_000,
            spans: Vec::new(),
            ops: vec![
                OpStat {
                    op: Op::Modexp,
                    count: modexps,
                },
                OpStat {
                    op: Op::Retries, // gauge: must be ignored
                    count: 1,
                },
            ],
            comm: CommStat {
                up_bytes: up,
                down_bytes: 50,
                messages: 2,
                half_rounds: 2,
                labels: Vec::new(),
            },
            mem: MemStat::default(),
        }
    }

    fn mem_report(experiment: &str, allocs: u64, bytes: u64, peak: u64) -> CostReport {
        let mut r = report(experiment, "p", 100, 1_000);
        r.mem = MemStat {
            allocs,
            alloc_bytes: bytes,
            free_bytes: bytes / 2,
            reallocs: 1,
            live_bytes: bytes / 2,
            peak_live_bytes: peak,
        };
        r
    }

    fn suite(reports: Vec<CostReport>) -> Suite {
        Suite {
            version: 2,
            threads: 1,
            reports,
        }
    }

    fn suite_at(threads: u64, reports: Vec<CostReport>) -> Suite {
        Suite {
            version: 3,
            threads,
            reports,
        }
    }

    #[test]
    fn unchanged_rerun_has_no_regressions() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 100, 1_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.pairs_compared, 1);
        assert!(out.regressions.is_empty(), "{out:?}");
        // modexp + up_bytes + down_bytes (retries is a gauge, excluded).
        assert_eq!(out.metrics_compared, 3);
    }

    #[test]
    fn counter_growth_past_threshold_flags() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 110, 1_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.regressions.len(), 1, "{out:?}");
        let r = &out.regressions[0];
        assert_eq!(r.metric, "op:modexp");
        assert_eq!((r.baseline, r.current), (100, 110));
        assert!((r.pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn growth_within_threshold_passes() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 104, 1_040)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty(), "{out:?}");
    }

    #[test]
    fn comm_bytes_growth_flags() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 100, 1_200)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].metric, "comm:up_bytes");
    }

    #[test]
    fn shrinking_is_never_a_regression() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 10, 100)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty());
    }

    #[test]
    fn zero_baseline_going_nonzero_always_flags() {
        let base = suite(vec![report("e1", "p", 0, 1_000)]);
        let cur = suite(vec![report("e1", "p", 1, 1_000)]);
        let out = compare_suites(&base, &cur, 50.0).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert!(out.regressions[0].pct().is_infinite());
    }

    #[test]
    fn gauge_counters_are_ignored() {
        let mut cur_report = report("e1", "p", 100, 1_000);
        cur_report.ops[1].count = 1_000_000; // retries explode: fault noise
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![cur_report]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty(), "{out:?}");
    }

    #[test]
    fn unmatched_reports_are_skipped_but_matches_compare() {
        let base = suite(vec![
            report("e1", "p", 100, 1_000),
            report("e2", "q", 7, 10),
        ]);
        let cur = suite(vec![
            report("e1", "p", 200, 1_000),
            report("e9", "new", 1, 1),
        ]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.pairs_compared, 1);
        assert_eq!(out.regressions.len(), 1);
    }

    #[test]
    fn disjoint_suites_error() {
        let base = suite(vec![report("e1", "p", 1, 1)]);
        let cur = suite(vec![report("e2", "q", 1, 1)]);
        assert!(compare_suites(&base, &cur, 5.0).is_err());
    }

    #[test]
    fn deltas_record_every_comparison_even_when_nothing_flags() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 100, 1_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.deltas.len(), 3, "{out:?}");
        assert!(out.deltas.iter().all(|d| d.gated && !d.flagged));
        let metrics: Vec<&str> = out.deltas.iter().map(|d| d.metric.as_str()).collect();
        assert_eq!(metrics, ["comm:down_bytes", "comm:up_bytes", "op:modexp"]);
    }

    #[test]
    fn heap_growth_flags_in_the_single_thread_regime() {
        let base = suite_at(1, vec![mem_report("e1", 100, 10_000, 4_096)]);
        let cur = suite_at(1, vec![mem_report("e1", 100, 12_000, 4_096)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.regressions.len(), 1, "{out:?}");
        assert_eq!(out.regressions[0].metric, "mem:alloc_bytes");
        // op:modexp + 2 comm + mem:allocs + mem:alloc_bytes (peak is
        // informational and excluded from the coverage count).
        assert_eq!(out.metrics_compared, 5);
        assert_eq!(out.deltas.len(), 6);
    }

    #[test]
    fn heap_is_informational_against_an_uninstrumented_baseline() {
        // v3 baseline produced without obs-alloc: mem.allocs == 0.
        let base = suite_at(1, vec![report("e1", "p", 100, 1_000)]);
        let cur = suite_at(1, vec![mem_report("e1", 500, 50_000, 9_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty(), "{out:?}");
        assert_eq!(out.metrics_compared, 3);
        let allocs = out
            .deltas
            .iter()
            .find(|d| d.metric == "mem:allocs")
            .unwrap();
        assert!(!allocs.gated && !allocs.flagged);
        assert_eq!((allocs.baseline, allocs.current), (0, 500));
    }

    #[test]
    fn heap_is_informational_outside_single_thread() {
        let base = suite_at(4, vec![mem_report("e1", 100, 10_000, 4_096)]);
        let cur = suite_at(4, vec![mem_report("e1", 1_000, 100_000, 40_960)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty(), "{out:?}");
        assert!(out
            .deltas
            .iter()
            .filter(|d| d.metric.starts_with("mem:"))
            .all(|d| !d.gated));
    }

    #[test]
    fn peak_live_bytes_never_flags() {
        let base = suite_at(1, vec![mem_report("e1", 100, 10_000, 1_000)]);
        let cur = suite_at(1, vec![mem_report("e1", 100, 10_000, 100_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty(), "{out:?}");
        let peak = out
            .deltas
            .iter()
            .find(|d| d.metric == "mem:peak_live_bytes")
            .unwrap();
        assert!(!peak.gated);
        assert_eq!((peak.baseline, peak.current), (1_000, 100_000));
    }

    #[test]
    fn heap_shrink_is_never_a_regression() {
        let base = suite_at(1, vec![mem_report("e1", 1_000, 100_000, 50_000)]);
        let cur = suite_at(1, vec![mem_report("e1", 100, 10_000, 5_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty(), "{out:?}");
    }

    #[test]
    fn zero_mem_reports_add_no_mem_deltas() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 100, 1_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.deltas.iter().all(|d| !d.metric.starts_with("mem:")));
    }

    // --- the scaling gate ---

    fn scan(n: u64, threads: u64, ns: u64, cores: u64) -> ScanRow {
        ScanRow {
            n,
            threads,
            ns_per_query: ns,
            cores,
        }
    }

    #[test]
    fn scaling_speedup_rule_passes_on_real_parallel_hardware() {
        // 4 cores, 4 threads, 2× faster: comfortably over the 10% bar.
        let rows = [scan(4096, 1, 20_000_000, 4), scan(4096, 4, 10_000_000, 4)];
        let out = check_scaling(&rows, 4096, 10.0, 10.0).unwrap();
        assert_eq!(out.len(), 1);
        let v = &out[0];
        assert!(v.pass, "{v:?}");
        assert!(matches!(v.rule, ScalingRule::Speedup(_)));
        assert!((v.speedup - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_speedup_rule_flags_a_pool_that_does_not_scale() {
        // 4 cores available but the pool only breaks even: gate fails.
        let rows = [scan(4096, 1, 20_000_000, 4), scan(4096, 4, 19_500_000, 4)];
        let out = check_scaling(&rows, 4096, 10.0, 10.0).unwrap();
        assert!(!out[0].pass, "{:?}", out[0]);
    }

    #[test]
    fn scaling_degrades_to_overhead_bound_on_a_small_machine() {
        // 1 core: no speedup possible, but ≤10% overhead passes…
        let rows = [scan(4096, 1, 20_000_000, 1), scan(4096, 4, 21_000_000, 1)];
        let out = check_scaling(&rows, 4096, 10.0, 10.0).unwrap();
        assert!(out[0].pass, "{:?}", out[0]);
        assert!(matches!(out[0].rule, ScalingRule::OverheadBound(_)));
        // …while the seed's spawn-per-call engine at +30% would not.
        let rows = [scan(4096, 1, 20_000_000, 1), scan(4096, 4, 26_000_000, 1)];
        let out = check_scaling(&rows, 4096, 10.0, 10.0).unwrap();
        assert!(!out[0].pass, "{:?}", out[0]);
    }

    #[test]
    fn scaling_ignores_sizes_below_min_n() {
        let rows = [
            scan(256, 1, 1_000, 4),
            scan(256, 4, 5_000, 4), // tiny size allowed to be slower
            scan(4096, 1, 20_000_000, 4),
            scan(4096, 4, 10_000_000, 4),
        ];
        let out = check_scaling(&rows, 4096, 10.0, 10.0).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].n, 4096);
        assert!(out[0].pass);
    }

    #[test]
    fn scaling_errors_when_nothing_qualifies() {
        let rows = [scan(256, 1, 1_000, 4), scan(256, 4, 900, 4)];
        assert!(check_scaling(&rows, 4096, 10.0, 10.0).is_err());
        assert!(check_scaling(&[], 4096, 10.0, 10.0).is_err());
    }

    #[test]
    fn scan_rows_parse_with_and_without_cores() {
        let src = r#"[
            {"n":4096,"threads":1,"ns_per_query":100,"bytes_up":1,"bytes_down":2,"cores":4},
            {"n":4096,"threads":4,"ns_per_query":50,"bytes_up":1,"bytes_down":2}
        ]"#;
        let rows = parse_scan(src).unwrap();
        assert_eq!(rows[0], scan(4096, 1, 100, 4));
        assert_eq!(rows[1].cores, 0, "missing cores parses as unknown");
        assert!(parse_scan("{}").is_err());
        assert!(parse_scan("[{\"n\":1}]").is_err());
    }
}
