//! The cost-trend regression gate: compare two cost-report suites.
//!
//! The workspace's determinism contract (DESIGN.md §8) makes this gate
//! noise-free: deterministic op counters and metered comm bytes are
//! bit-identical across reruns, thread counts, and fault seeds, so any
//! delta between a committed baseline `BENCH_costs.json` and a fresh run
//! is a real change in protocol cost. [`compare_suites`] flags every
//! metric that grew past a percentage threshold; `spfe-tables trend`
//! turns the result into an exit code for CI.
//!
//! Wall-clock times and scheduler/fault gauges are deliberately *not*
//! compared — they vary run to run and would make the gate flaky.
//!
//! The heap axis (schema v3) joins the gate with its own rules: at
//! `threads == 1` on both sides, `mem:allocs` and `mem:alloc_bytes` are
//! deterministic (DESIGN.md §12) and gate like op counters — but only
//! when the baseline actually carries heap data (`mem.allocs > 0`), so a
//! v3 baseline produced without `obs-alloc` never flags an instrumented
//! run. `mem:peak_live_bytes` is reported in [`TrendReport::deltas`] but
//! never gated: the high-water mark depends on allocator reuse and, at
//! `SPFE_THREADS > 1`, on scheduling.

use spfe_obs::{CostReport, Suite};
use std::collections::BTreeMap;

/// One metric that regressed past the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Experiment id of the offending report.
    pub experiment: String,
    /// Protocol variant of the offending report.
    pub protocol: String,
    /// Metric name (`op:<name>`, `comm:<direction>_bytes`, or `mem:<field>`).
    pub metric: String,
    /// Baseline value.
    pub baseline: u64,
    /// Current value.
    pub current: u64,
}

impl Regression {
    /// Percentage growth over baseline (`inf` when the baseline is 0).
    pub fn pct(&self) -> f64 {
        pct(self.baseline, self.current)
    }
}

/// One metric comparison, whether or not it flagged — the full record
/// behind `spfe-tables trend --json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Experiment id of the compared report.
    pub experiment: String,
    /// Protocol variant of the compared report.
    pub protocol: String,
    /// Metric name (`op:<name>`, `comm:<direction>_bytes`, or `mem:<field>`).
    pub metric: String,
    /// Baseline value.
    pub baseline: u64,
    /// Current value.
    pub current: u64,
    /// Whether this metric participates in the gate. Informational
    /// metrics (`mem:peak_live_bytes`, heap counters outside the
    /// single-thread regime) are reported but can never flag.
    pub gated: bool,
    /// Whether this metric grew past the threshold *and* is gated.
    pub flagged: bool,
}

impl Delta {
    /// Percentage growth over baseline (`inf` when the baseline is 0,
    /// negative when the metric shrank).
    pub fn pct(&self) -> f64 {
        pct(self.baseline, self.current)
    }
}

fn pct(baseline: u64, current: u64) -> f64 {
    if baseline == 0 {
        if current == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (current as f64 - baseline as f64) / baseline as f64
    }
}

/// Outcome of a baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendReport {
    /// `(experiment, protocol)` pairs present in both suites.
    pub pairs_compared: usize,
    /// Individual *gated* metric comparisons performed (informational
    /// deltas are excluded so the gate's coverage figure stays honest).
    pub metrics_compared: usize,
    /// Metrics that grew more than the threshold, in report order.
    pub regressions: Vec<Regression>,
    /// Every comparison performed, flagged or not, in report order.
    pub deltas: Vec<Delta>,
}

/// The metrics the gate covers for one report: every *deterministic* op
/// counter plus the two comm byte totals. Missing ops count as 0, so an
/// op appearing only in one suite is still compared.
fn metrics(report: &CostReport) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for s in &report.ops {
        if s.op.deterministic() {
            out.insert(format!("op:{}", s.op.name()), s.count);
        }
    }
    out.insert("comm:up_bytes".into(), report.comm.up_bytes);
    out.insert("comm:down_bytes".into(), report.comm.down_bytes);
    out
}

/// The heap metrics for one pair of reports: `(metric, baseline, current,
/// gated)`. Emitted only when either side carries heap data at all, so
/// pre-v3 baselines and non-`obs-alloc` runs produce no `mem:` rows.
fn mem_metrics(
    baseline: &Suite,
    base: &CostReport,
    current: &Suite,
    cur: &CostReport,
) -> Vec<(&'static str, u64, u64, bool)> {
    if base.mem.allocs == 0 && cur.mem.allocs == 0 {
        return Vec::new();
    }
    // Alloc count/bytes are deterministic only in the single-thread
    // regime, and comparing an instrumented run against an uninstrumented
    // baseline (allocs == 0) would always flag; outside that regime the
    // rows are informational.
    let gate = baseline.threads == 1 && current.threads == 1 && base.mem.allocs > 0;
    vec![
        ("mem:allocs", base.mem.allocs, cur.mem.allocs, gate),
        (
            "mem:alloc_bytes",
            base.mem.alloc_bytes,
            cur.mem.alloc_bytes,
            gate,
        ),
        // The high-water mark depends on allocator reuse: never gated.
        (
            "mem:peak_live_bytes",
            base.mem.peak_live_bytes,
            cur.mem.peak_live_bytes,
            false,
        ),
    ]
}

/// Compares `current` against `baseline`, flagging every deterministic
/// counter or comm byte total that grew more than `threshold_pct` percent
/// (a metric going from 0 to nonzero always flags). Shrinking is never a
/// regression. Heap counters join the gate under the conditions in the
/// module docs; every comparison — gated or informational — is recorded
/// in [`TrendReport::deltas`].
///
/// # Errors
///
/// When the suites share no `(experiment, protocol)` pair — a gate that
/// compares nothing must fail loudly rather than pass vacuously.
pub fn compare_suites(
    baseline: &Suite,
    current: &Suite,
    threshold_pct: f64,
) -> Result<TrendReport, String> {
    let mut rep = TrendReport {
        pairs_compared: 0,
        metrics_compared: 0,
        regressions: Vec::new(),
        deltas: Vec::new(),
    };
    for cur in &current.reports {
        let Some(base) = baseline.find(&cur.experiment, &cur.protocol) else {
            continue;
        };
        rep.pairs_compared += 1;
        let base_metrics = metrics(base);
        let cur_metrics = metrics(cur);
        let mut keys: Vec<&String> = base_metrics.keys().chain(cur_metrics.keys()).collect();
        keys.sort();
        keys.dedup();
        let mut rows: Vec<(String, u64, u64, bool)> = keys
            .into_iter()
            .map(|key| {
                let b = base_metrics.get(key).copied().unwrap_or(0);
                let c = cur_metrics.get(key).copied().unwrap_or(0);
                (key.clone(), b, c, true)
            })
            .collect();
        rows.extend(
            mem_metrics(baseline, base, current, cur)
                .into_iter()
                .map(|(k, b, c, gated)| (k.to_owned(), b, c, gated)),
        );
        for (metric, b, c, gated) in rows {
            if gated {
                rep.metrics_compared += 1;
            }
            let budget = b as f64 * (1.0 + threshold_pct / 100.0);
            let flagged = gated && c as f64 > budget;
            if flagged {
                rep.regressions.push(Regression {
                    experiment: cur.experiment.clone(),
                    protocol: cur.protocol.clone(),
                    metric: metric.clone(),
                    baseline: b,
                    current: c,
                });
            }
            rep.deltas.push(Delta {
                experiment: cur.experiment.clone(),
                protocol: cur.protocol.clone(),
                metric,
                baseline: b,
                current: c,
                gated,
                flagged,
            });
        }
    }
    if rep.pairs_compared == 0 {
        return Err(format!(
            "no (experiment, protocol) pair in common: baseline has {} report(s), \
             current has {} — nothing to compare",
            baseline.reports.len(),
            current.reports.len()
        ));
    }
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_obs::{CommStat, MemStat, Op, OpStat};

    fn report(experiment: &str, protocol: &str, modexps: u64, up: u64) -> CostReport {
        CostReport {
            experiment: experiment.into(),
            protocol: protocol.into(),
            elapsed_ns: 1_000,
            spans: Vec::new(),
            ops: vec![
                OpStat {
                    op: Op::Modexp,
                    count: modexps,
                },
                OpStat {
                    op: Op::Retries, // gauge: must be ignored
                    count: 1,
                },
            ],
            comm: CommStat {
                up_bytes: up,
                down_bytes: 50,
                messages: 2,
                half_rounds: 2,
                labels: Vec::new(),
            },
            mem: MemStat::default(),
        }
    }

    fn mem_report(experiment: &str, allocs: u64, bytes: u64, peak: u64) -> CostReport {
        let mut r = report(experiment, "p", 100, 1_000);
        r.mem = MemStat {
            allocs,
            alloc_bytes: bytes,
            free_bytes: bytes / 2,
            reallocs: 1,
            live_bytes: bytes / 2,
            peak_live_bytes: peak,
        };
        r
    }

    fn suite(reports: Vec<CostReport>) -> Suite {
        Suite {
            version: 2,
            threads: 1,
            reports,
        }
    }

    fn suite_at(threads: u64, reports: Vec<CostReport>) -> Suite {
        Suite {
            version: 3,
            threads,
            reports,
        }
    }

    #[test]
    fn unchanged_rerun_has_no_regressions() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 100, 1_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.pairs_compared, 1);
        assert!(out.regressions.is_empty(), "{out:?}");
        // modexp + up_bytes + down_bytes (retries is a gauge, excluded).
        assert_eq!(out.metrics_compared, 3);
    }

    #[test]
    fn counter_growth_past_threshold_flags() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 110, 1_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.regressions.len(), 1, "{out:?}");
        let r = &out.regressions[0];
        assert_eq!(r.metric, "op:modexp");
        assert_eq!((r.baseline, r.current), (100, 110));
        assert!((r.pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn growth_within_threshold_passes() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 104, 1_040)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty(), "{out:?}");
    }

    #[test]
    fn comm_bytes_growth_flags() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 100, 1_200)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].metric, "comm:up_bytes");
    }

    #[test]
    fn shrinking_is_never_a_regression() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 10, 100)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty());
    }

    #[test]
    fn zero_baseline_going_nonzero_always_flags() {
        let base = suite(vec![report("e1", "p", 0, 1_000)]);
        let cur = suite(vec![report("e1", "p", 1, 1_000)]);
        let out = compare_suites(&base, &cur, 50.0).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert!(out.regressions[0].pct().is_infinite());
    }

    #[test]
    fn gauge_counters_are_ignored() {
        let mut cur_report = report("e1", "p", 100, 1_000);
        cur_report.ops[1].count = 1_000_000; // retries explode: fault noise
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![cur_report]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty(), "{out:?}");
    }

    #[test]
    fn unmatched_reports_are_skipped_but_matches_compare() {
        let base = suite(vec![
            report("e1", "p", 100, 1_000),
            report("e2", "q", 7, 10),
        ]);
        let cur = suite(vec![
            report("e1", "p", 200, 1_000),
            report("e9", "new", 1, 1),
        ]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.pairs_compared, 1);
        assert_eq!(out.regressions.len(), 1);
    }

    #[test]
    fn disjoint_suites_error() {
        let base = suite(vec![report("e1", "p", 1, 1)]);
        let cur = suite(vec![report("e2", "q", 1, 1)]);
        assert!(compare_suites(&base, &cur, 5.0).is_err());
    }

    #[test]
    fn deltas_record_every_comparison_even_when_nothing_flags() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 100, 1_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.deltas.len(), 3, "{out:?}");
        assert!(out.deltas.iter().all(|d| d.gated && !d.flagged));
        let metrics: Vec<&str> = out.deltas.iter().map(|d| d.metric.as_str()).collect();
        assert_eq!(metrics, ["comm:down_bytes", "comm:up_bytes", "op:modexp"]);
    }

    #[test]
    fn heap_growth_flags_in_the_single_thread_regime() {
        let base = suite_at(1, vec![mem_report("e1", 100, 10_000, 4_096)]);
        let cur = suite_at(1, vec![mem_report("e1", 100, 12_000, 4_096)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.regressions.len(), 1, "{out:?}");
        assert_eq!(out.regressions[0].metric, "mem:alloc_bytes");
        // op:modexp + 2 comm + mem:allocs + mem:alloc_bytes (peak is
        // informational and excluded from the coverage count).
        assert_eq!(out.metrics_compared, 5);
        assert_eq!(out.deltas.len(), 6);
    }

    #[test]
    fn heap_is_informational_against_an_uninstrumented_baseline() {
        // v3 baseline produced without obs-alloc: mem.allocs == 0.
        let base = suite_at(1, vec![report("e1", "p", 100, 1_000)]);
        let cur = suite_at(1, vec![mem_report("e1", 500, 50_000, 9_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty(), "{out:?}");
        assert_eq!(out.metrics_compared, 3);
        let allocs = out
            .deltas
            .iter()
            .find(|d| d.metric == "mem:allocs")
            .unwrap();
        assert!(!allocs.gated && !allocs.flagged);
        assert_eq!((allocs.baseline, allocs.current), (0, 500));
    }

    #[test]
    fn heap_is_informational_outside_single_thread() {
        let base = suite_at(4, vec![mem_report("e1", 100, 10_000, 4_096)]);
        let cur = suite_at(4, vec![mem_report("e1", 1_000, 100_000, 40_960)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty(), "{out:?}");
        assert!(out
            .deltas
            .iter()
            .filter(|d| d.metric.starts_with("mem:"))
            .all(|d| !d.gated));
    }

    #[test]
    fn peak_live_bytes_never_flags() {
        let base = suite_at(1, vec![mem_report("e1", 100, 10_000, 1_000)]);
        let cur = suite_at(1, vec![mem_report("e1", 100, 10_000, 100_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty(), "{out:?}");
        let peak = out
            .deltas
            .iter()
            .find(|d| d.metric == "mem:peak_live_bytes")
            .unwrap();
        assert!(!peak.gated);
        assert_eq!((peak.baseline, peak.current), (1_000, 100_000));
    }

    #[test]
    fn heap_shrink_is_never_a_regression() {
        let base = suite_at(1, vec![mem_report("e1", 1_000, 100_000, 50_000)]);
        let cur = suite_at(1, vec![mem_report("e1", 100, 10_000, 5_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty(), "{out:?}");
    }

    #[test]
    fn zero_mem_reports_add_no_mem_deltas() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 100, 1_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.deltas.iter().all(|d| !d.metric.starts_with("mem:")));
    }
}
