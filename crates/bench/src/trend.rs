//! The cost-trend regression gate: compare two cost-report suites.
//!
//! The workspace's determinism contract (DESIGN.md §8) makes this gate
//! noise-free: deterministic op counters and metered comm bytes are
//! bit-identical across reruns, thread counts, and fault seeds, so any
//! delta between a committed baseline `BENCH_costs.json` and a fresh run
//! is a real change in protocol cost. [`compare_suites`] flags every
//! metric that grew past a percentage threshold; `spfe-tables trend`
//! turns the result into an exit code for CI.
//!
//! Wall-clock times and scheduler/fault gauges are deliberately *not*
//! compared — they vary run to run and would make the gate flaky.

use spfe_obs::{CostReport, Suite};
use std::collections::BTreeMap;

/// One metric that regressed past the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Experiment id of the offending report.
    pub experiment: String,
    /// Protocol variant of the offending report.
    pub protocol: String,
    /// Metric name (`op:<name>` or `comm:<direction>_bytes`).
    pub metric: String,
    /// Baseline value.
    pub baseline: u64,
    /// Current value.
    pub current: u64,
}

impl Regression {
    /// Percentage growth over baseline (`inf` when the baseline is 0).
    pub fn pct(&self) -> f64 {
        if self.baseline == 0 {
            f64::INFINITY
        } else {
            100.0 * (self.current as f64 - self.baseline as f64) / self.baseline as f64
        }
    }
}

/// Outcome of a baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendReport {
    /// `(experiment, protocol)` pairs present in both suites.
    pub pairs_compared: usize,
    /// Individual metric comparisons performed.
    pub metrics_compared: usize,
    /// Metrics that grew more than the threshold, in report order.
    pub regressions: Vec<Regression>,
}

/// The metrics the gate covers for one report: every *deterministic* op
/// counter plus the two comm byte totals. Missing ops count as 0, so an
/// op appearing only in one suite is still compared.
fn metrics(report: &CostReport) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for s in &report.ops {
        if s.op.deterministic() {
            out.insert(format!("op:{}", s.op.name()), s.count);
        }
    }
    out.insert("comm:up_bytes".into(), report.comm.up_bytes);
    out.insert("comm:down_bytes".into(), report.comm.down_bytes);
    out
}

/// Compares `current` against `baseline`, flagging every deterministic
/// counter or comm byte total that grew more than `threshold_pct` percent
/// (a metric going from 0 to nonzero always flags). Shrinking is never a
/// regression.
///
/// # Errors
///
/// When the suites share no `(experiment, protocol)` pair — a gate that
/// compares nothing must fail loudly rather than pass vacuously.
pub fn compare_suites(
    baseline: &Suite,
    current: &Suite,
    threshold_pct: f64,
) -> Result<TrendReport, String> {
    let mut rep = TrendReport {
        pairs_compared: 0,
        metrics_compared: 0,
        regressions: Vec::new(),
    };
    for cur in &current.reports {
        let Some(base) = baseline.find(&cur.experiment, &cur.protocol) else {
            continue;
        };
        rep.pairs_compared += 1;
        let base_metrics = metrics(base);
        let cur_metrics = metrics(cur);
        let mut keys: Vec<&String> = base_metrics.keys().chain(cur_metrics.keys()).collect();
        keys.sort();
        keys.dedup();
        for key in keys {
            let b = base_metrics.get(key).copied().unwrap_or(0);
            let c = cur_metrics.get(key).copied().unwrap_or(0);
            rep.metrics_compared += 1;
            let budget = b as f64 * (1.0 + threshold_pct / 100.0);
            if c as f64 > budget {
                rep.regressions.push(Regression {
                    experiment: cur.experiment.clone(),
                    protocol: cur.protocol.clone(),
                    metric: key.clone(),
                    baseline: b,
                    current: c,
                });
            }
        }
    }
    if rep.pairs_compared == 0 {
        return Err(format!(
            "no (experiment, protocol) pair in common: baseline has {} report(s), \
             current has {} — nothing to compare",
            baseline.reports.len(),
            current.reports.len()
        ));
    }
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_obs::{CommStat, Op, OpStat};

    fn report(experiment: &str, protocol: &str, modexps: u64, up: u64) -> CostReport {
        CostReport {
            experiment: experiment.into(),
            protocol: protocol.into(),
            elapsed_ns: 1_000,
            spans: Vec::new(),
            ops: vec![
                OpStat {
                    op: Op::Modexp,
                    count: modexps,
                },
                OpStat {
                    op: Op::Retries, // gauge: must be ignored
                    count: 1,
                },
            ],
            comm: CommStat {
                up_bytes: up,
                down_bytes: 50,
                messages: 2,
                half_rounds: 2,
                labels: Vec::new(),
            },
        }
    }

    fn suite(reports: Vec<CostReport>) -> Suite {
        Suite {
            version: 2,
            threads: 1,
            reports,
        }
    }

    #[test]
    fn unchanged_rerun_has_no_regressions() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 100, 1_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.pairs_compared, 1);
        assert!(out.regressions.is_empty(), "{out:?}");
        // modexp + up_bytes + down_bytes (retries is a gauge, excluded).
        assert_eq!(out.metrics_compared, 3);
    }

    #[test]
    fn counter_growth_past_threshold_flags() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 110, 1_000)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.regressions.len(), 1, "{out:?}");
        let r = &out.regressions[0];
        assert_eq!(r.metric, "op:modexp");
        assert_eq!((r.baseline, r.current), (100, 110));
        assert!((r.pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn growth_within_threshold_passes() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 104, 1_040)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty(), "{out:?}");
    }

    #[test]
    fn comm_bytes_growth_flags() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 100, 1_200)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].metric, "comm:up_bytes");
    }

    #[test]
    fn shrinking_is_never_a_regression() {
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![report("e1", "p", 10, 100)]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty());
    }

    #[test]
    fn zero_baseline_going_nonzero_always_flags() {
        let base = suite(vec![report("e1", "p", 0, 1_000)]);
        let cur = suite(vec![report("e1", "p", 1, 1_000)]);
        let out = compare_suites(&base, &cur, 50.0).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert!(out.regressions[0].pct().is_infinite());
    }

    #[test]
    fn gauge_counters_are_ignored() {
        let mut cur_report = report("e1", "p", 100, 1_000);
        cur_report.ops[1].count = 1_000_000; // retries explode: fault noise
        let base = suite(vec![report("e1", "p", 100, 1_000)]);
        let cur = suite(vec![cur_report]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert!(out.regressions.is_empty(), "{out:?}");
    }

    #[test]
    fn unmatched_reports_are_skipped_but_matches_compare() {
        let base = suite(vec![
            report("e1", "p", 100, 1_000),
            report("e2", "q", 7, 10),
        ]);
        let cur = suite(vec![
            report("e1", "p", 200, 1_000),
            report("e9", "new", 1, 1),
        ]);
        let out = compare_suites(&base, &cur, 5.0).unwrap();
        assert_eq!(out.pairs_compared, 1);
        assert_eq!(out.regressions.len(), 1);
    }

    #[test]
    fn disjoint_suites_error() {
        let base = suite(vec![report("e1", "p", 1, 1)]);
        let cur = suite(vec![report("e2", "q", 1, 1)]);
        assert!(compare_suites(&base, &cur, 5.0).is_err());
    }
}
