//! The differential obliviousness audit behind `spfe-tables audit`
//! (DESIGN.md §14).
//!
//! For one driver from [`spfe::harness`], [`audit_driver`] re-runs the
//! protocol over every secret-input variant and every masked fault plan,
//! collects the per-party view fingerprints ([`spfe::obs::audit`]), and
//! reduces them to three verdicts:
//!
//! * **correctness** — every run returned its variant's expected digest;
//! * **server_oblivious** — no server-observable fingerprint moved when
//!   the client's secrets changed;
//! * **fault_masked** — no party's fingerprint (client included) moved
//!   under a masked-drop schedule at either audit seed.
//!
//! [`audit_json`] renders the sweep as the `spfe-audit/v1` document that
//! `BENCH_audit.json` stores; [`parse_audit`] reads it back and
//! [`compare_audits`] diffs a fresh sweep against the committed baseline —
//! the CI gate, in the mold of the `trend` cost gate.

use spfe::harness::{Driver, NUM_VARIANTS};
use spfe::obs::audit::{deterministic_ops, PartyView};
use spfe::transport::{FaultAction, FaultPlan, FaultyChannel};
use spfe_obs::json::{self, escape, Json};

/// Schema tag of the audit document.
pub const AUDIT_SCHEMA: &str = "spfe-audit/v1";

/// The two fixed masked-drop fault seeds every audit sweeps. CI reruns
/// the whole gate under different `SPFE_THREADS` settings instead of
/// different seeds: the thread axis is outside the process's control.
pub const AUDIT_SEEDS: [u64; 2] = [11, 77];

/// Per-mille drop rate of the masked fault plans (mirrors the
/// fault-determinism suite).
const DROP_PER_MILLE: u32 = 300;

/// Experiment ids mapped to the drivers whose protocols they exercise, so
/// `spfe-tables audit e1` audits the Table 1 constructions and CI can
/// upload per-experiment artifacts.
pub const AUDIT_GROUPS: &[(&str, &[&str])] = &[
    ("e1", &["hom_pir", "spir", "psm_spfe", "two_phase"]),
    ("e2", &["xor2", "poly_it", "multiserver"]),
    ("e3", &["psm_spfe"]),
    ("e4", &["input_select"]),
    ("e6", &["weighted_sum"]),
    ("e7", &["two_phase", "weighted_sum"]),
    ("e8", &["frequency"]),
    ("e9", &["hom_pir"]),
    ("e10", &["batched", "spir"]),
    ("e11", &["recursive", "hom_pir"]),
    ("e12", &["spir", "universal"]),
];

/// One party's entry in an audit report: the canonical (variant 0,
/// honest) view reduced to its fingerprint and byte breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartyReport {
    /// `client`, `server0`, `server1`, …
    pub party: String,
    /// Lowercase-hex `spfe-view/v1` fingerprint.
    pub fingerprint: String,
    /// Messages the party observed.
    pub events: u64,
    /// Bytes the party sent.
    pub sent_bytes: u64,
    /// Bytes the party received.
    pub recv_bytes: u64,
    /// Per-label byte totals in first-use order.
    pub labels: Vec<(String, u64)>,
}

/// The audit result for one driver.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Driver name from the harness table.
    pub driver: String,
    /// Number of servers the protocol runs against.
    pub servers: usize,
    /// Every run returned its variant's expected digest.
    pub correctness: bool,
    /// Server fingerprints are bit-identical across secret variants.
    pub server_oblivious: bool,
    /// Every fingerprint is bit-identical across masked fault seeds.
    pub fault_masked: bool,
    /// Human-readable descriptions of every divergence found.
    pub divergences: Vec<String>,
    /// Canonical per-party views (variant 0, honest plan).
    pub parties: Vec<PartyReport>,
}

impl AuditReport {
    /// The overall verdict.
    pub fn ok(&self) -> bool {
        self.correctness && self.server_oblivious && self.fault_masked
    }
}

/// Runs driver `d` at secret variant `v` under `plan`; returns the digest
/// and the per-party views with the deterministic op vector folded into
/// the client's view. Op counters are process-global: callers must not
/// run audits concurrently.
fn views_under(d: &Driver, v: usize, plan: FaultPlan) -> (Result<u64, String>, Vec<PartyView>) {
    // Warm the lazily generated crypto fixture first: the very first run
    // in a process would otherwise count the one-off keygen modexps into
    // its op vector and diverge from every later run.
    let _ = spfe::harness::fx();
    spfe_obs::reset();
    let mut ch = FaultyChannel::new(d.servers, plan, 0);
    let got = (d.run_variant)(&mut ch, v).map_err(|e| e.to_string());
    let mut views = ch.inner().party_views();
    views[0].ops = deterministic_ops(&spfe_obs::ops_snapshot());
    (got, views)
}

fn fingerprints(views: &[PartyView]) -> Vec<String> {
    views.iter().map(|pv| pv.fingerprint_hex()).collect()
}

/// The differential sweep for one driver: [`NUM_VARIANTS`] secret
/// variants × (honest + [`AUDIT_SEEDS`] masked-drop plans).
pub fn audit_driver(d: &Driver) -> AuditReport {
    let mut divergences = Vec::new();
    let mut correctness = true;
    let mut server_oblivious = true;
    let mut fault_masked = true;
    let mut canonical: Vec<PartyReport> = Vec::new();
    let mut server_baseline: Option<Vec<String>> = None;

    for v in 0..NUM_VARIANTS {
        let expect = (d.expect_variant)(v);
        let (got, honest_views) = views_under(d, v, FaultPlan::honest());
        match got {
            Ok(val) if val == expect => {}
            Ok(val) => {
                correctness = false;
                divergences.push(format!("v{v}/honest: digest {val} != expected {expect}"));
            }
            Err(e) => {
                correctness = false;
                divergences.push(format!("v{v}/honest: failed: {e}"));
            }
        }
        let honest_fps = fingerprints(&honest_views);

        if v == 0 {
            canonical = honest_views
                .iter()
                .map(|pv| {
                    let (sent_bytes, recv_bytes) = pv.byte_totals();
                    PartyReport {
                        party: pv.party.name(),
                        fingerprint: pv.fingerprint_hex(),
                        events: pv.events.len() as u64,
                        sent_bytes,
                        recv_bytes,
                        labels: pv.bytes_by_label(),
                    }
                })
                .collect();
        }

        // The gate itself: server views must not move with the secrets.
        // (The client's view legitimately varies — it knows its secrets.)
        let server_fps: Vec<String> = honest_fps[1..].to_vec();
        match &server_baseline {
            None => server_baseline = Some(server_fps),
            Some(base) => {
                for (i, (a, b)) in base.iter().zip(&server_fps).enumerate() {
                    if a != b {
                        server_oblivious = false;
                        divergences.push(format!(
                            "v{v}: server{i} fingerprint moved with the secrets"
                        ));
                    }
                }
            }
        }

        // Masked drops must leave every party's fingerprint untouched.
        for seed in AUDIT_SEEDS {
            let plan = FaultPlan::with_rate(seed, FaultAction::Drop, DROP_PER_MILLE);
            let (got, faulty_views) = views_under(d, v, plan);
            match got {
                Ok(val) if val == expect => {}
                Ok(val) => {
                    correctness = false;
                    divergences.push(format!("v{v}/seed{seed}: digest {val} != {expect}"));
                }
                Err(e) => {
                    correctness = false;
                    divergences.push(format!("v{v}/seed{seed}: failed: {e}"));
                }
            }
            let faulty_fps = fingerprints(&faulty_views);
            for (i, (a, b)) in honest_fps.iter().zip(&faulty_fps).enumerate() {
                if a != b {
                    fault_masked = false;
                    let who = if i == 0 {
                        "client".to_owned()
                    } else {
                        format!("server{}", i - 1)
                    };
                    divergences.push(format!(
                        "v{v}/seed{seed}: {who} fingerprint moved under masked drops"
                    ));
                }
            }
        }
    }

    AuditReport {
        driver: d.name.to_owned(),
        servers: d.servers,
        correctness,
        server_oblivious,
        fault_masked,
        divergences,
        parties: canonical,
    }
}

/// Renders a sweep as the `spfe-audit/v1` JSON document.
pub fn audit_json(threads: usize, reports: &[AuditReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{AUDIT_SCHEMA}\",\n"));
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!("  \"variants\": {NUM_VARIANTS},\n"));
    s.push_str(&format!(
        "  \"fault_seeds\": [{}],\n",
        AUDIT_SEEDS.map(|x| x.to_string()).join(", ")
    ));
    s.push_str("  \"reports\": [");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {\n");
        s.push_str(&format!("      \"driver\": \"{}\",\n", escape(&r.driver)));
        s.push_str(&format!("      \"servers\": {},\n", r.servers));
        s.push_str(&format!(
            "      \"verdict\": \"{}\",\n",
            if r.ok() { "ok" } else { "leak" }
        ));
        s.push_str(&format!("      \"correctness\": {},\n", r.correctness));
        s.push_str(&format!(
            "      \"server_oblivious\": {},\n",
            r.server_oblivious
        ));
        s.push_str(&format!("      \"fault_masked\": {},\n", r.fault_masked));
        s.push_str("      \"divergences\": [");
        for (j, d) in r.divergences.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\"", escape(d)));
        }
        s.push_str("],\n");
        s.push_str("      \"parties\": [");
        for (j, p) in r.parties.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n        {{\"party\": \"{}\", \"fingerprint\": \"{}\", \"events\": {}, \
                 \"sent_bytes\": {}, \"recv_bytes\": {}, \"labels\": [",
                escape(&p.party),
                escape(&p.fingerprint),
                p.events,
                p.sent_bytes,
                p.recv_bytes
            ));
            for (k, (label, bytes)) in p.labels.iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"label\": \"{}\", \"bytes\": {bytes}}}",
                    escape(label)
                ));
            }
            s.push_str("]}");
        }
        s.push_str("\n      ]\n    }");
    }
    s.push_str("\n  ]\n}\n");
    s
}

/// A parsed `spfe-audit/v1` document (the baseline side of the gate).
#[derive(Debug, Clone)]
pub struct AuditDoc {
    /// `threads` the document was recorded at (informational: fingerprints
    /// must be thread-independent, so the gate ignores it).
    pub threads: u64,
    /// Variants swept.
    pub variants: u64,
    /// Fault seeds swept.
    pub seeds: Vec<u64>,
    /// Per-driver summaries.
    pub reports: Vec<ParsedReport>,
}

/// One driver's entry of a parsed audit document.
#[derive(Debug, Clone)]
pub struct ParsedReport {
    /// Driver name.
    pub driver: String,
    /// Overall verdict was `ok`.
    pub ok: bool,
    /// `(party, fingerprint)` pairs in document order.
    pub parties: Vec<(String, String)>,
}

fn field<'j>(j: &'j Json, key: &str, ctx: &str) -> Result<&'j Json, String> {
    j.get(key).ok_or_else(|| format!("{ctx}: missing `{key}`"))
}

/// Parses and structurally validates an `spfe-audit/v1` document.
pub fn parse_audit(src: &str) -> Result<AuditDoc, String> {
    let root = json::parse(src)?;
    let schema = field(&root, "schema", "root")?
        .as_str()
        .ok_or("`schema` is not a string")?;
    if schema != AUDIT_SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{AUDIT_SCHEMA}`"));
    }
    let threads = field(&root, "threads", "root")?
        .as_u64()
        .ok_or("`threads` is not a number")?;
    let variants = field(&root, "variants", "root")?
        .as_u64()
        .ok_or("`variants` is not a number")?;
    let seeds = field(&root, "fault_seeds", "root")?
        .as_arr()
        .ok_or("`fault_seeds` is not an array")?
        .iter()
        .map(|s| s.as_u64().ok_or_else(|| "bad fault seed".to_owned()))
        .collect::<Result<Vec<_>, _>>()?;
    let raw = field(&root, "reports", "root")?
        .as_arr()
        .ok_or("`reports` is not an array")?;
    if raw.is_empty() {
        return Err("empty `reports` array".into());
    }
    let mut reports = Vec::with_capacity(raw.len());
    for r in raw {
        let driver = field(r, "driver", "report")?
            .as_str()
            .ok_or("`driver` is not a string")?
            .to_owned();
        let ctx = format!("report `{driver}`");
        let verdict = field(r, "verdict", &ctx)?
            .as_str()
            .ok_or("`verdict` is not a string")?;
        if verdict != "ok" && verdict != "leak" {
            return Err(format!("{ctx}: unknown verdict `{verdict}`"));
        }
        let mut parties = Vec::new();
        for p in field(r, "parties", &ctx)?
            .as_arr()
            .ok_or("`parties` is not an array")?
        {
            let party = field(p, "party", &ctx)?
                .as_str()
                .ok_or("`party` is not a string")?
                .to_owned();
            let fp = field(p, "fingerprint", &ctx)?
                .as_str()
                .ok_or("`fingerprint` is not a string")?;
            if fp.len() != 64 || !fp.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(format!("{ctx}/{party}: fingerprint is not 64 hex chars"));
            }
            parties.push((party, fp.to_owned()));
        }
        if parties.is_empty() {
            return Err(format!("{ctx}: no parties"));
        }
        reports.push(ParsedReport {
            driver,
            ok: verdict == "ok",
            parties,
        });
    }
    Ok(AuditDoc {
        threads,
        variants,
        seeds,
        reports,
    })
}

/// Diffs a fresh sweep against the committed baseline. Empty result =
/// gate passes. The `threads` axis is deliberately ignored: CI runs the
/// same gate at several `SPFE_THREADS` settings against one baseline.
pub fn compare_audits(baseline: &AuditDoc, current: &[AuditReport]) -> Vec<String> {
    let mut diffs = Vec::new();
    for cur in current {
        if !cur.ok() {
            for d in &cur.divergences {
                diffs.push(format!("{}: {d}", cur.driver));
            }
            if cur.divergences.is_empty() {
                diffs.push(format!("{}: verdict is not ok", cur.driver));
            }
        }
        let Some(base) = baseline.reports.iter().find(|b| b.driver == cur.driver) else {
            diffs.push(format!("{}: missing from the baseline", cur.driver));
            continue;
        };
        if !base.ok {
            diffs.push(format!("{}: baseline verdict is not ok", cur.driver));
        }
        for p in &cur.parties {
            match base.parties.iter().find(|(name, _)| *name == p.party) {
                None => diffs.push(format!(
                    "{}/{}: missing from the baseline",
                    cur.driver, p.party
                )),
                Some((_, fp)) if *fp != p.fingerprint => diffs.push(format!(
                    "{}/{}: fingerprint {}… != baseline {}…",
                    cur.driver,
                    p.party,
                    &p.fingerprint[..12],
                    &fp[..12]
                )),
                Some(_) => {}
            }
        }
        if base.parties.len() != cur.parties.len() {
            diffs.push(format!(
                "{}: {} parties vs {} in the baseline",
                cur.driver,
                cur.parties.len(),
                base.parties.len()
            ));
        }
    }
    for base in &baseline.reports {
        if !current.iter().any(|c| c.driver == base.driver) {
            diffs.push(format!("{}: in the baseline but not audited", base.driver));
        }
    }
    diffs
}

/// What kind of document a `spfe-tables validate` input turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocKind {
    /// A cost-report suite at schema version 1–3.
    Cost(u32),
    /// An `spfe-audit/v1` leakage-audit document.
    Audit,
    /// An `spfe-metrics/v1` operational-telemetry snapshot.
    Metrics,
}

/// Validates one document of any family — cost suite (v1/v2/v3), audit,
/// or metrics snapshot — dispatching on the `schema` field. Returns the
/// human summary line (without the path prefix) and the detected kind.
pub fn validate_doc(src: &str) -> Result<(String, DocKind), String> {
    let schema = json::parse(src)?
        .get("schema")
        .and_then(|s| s.as_str().map(str::to_owned))
        .ok_or("missing `schema` field")?;
    if schema == spfe_obs::metrics::METRICS_SCHEMA {
        let snap = spfe_obs::metrics::parse_snapshot(src)?;
        return Ok((
            format!(
                "valid {} — {} session(s) ({} failed), {} driver row(s), {} byte(s)",
                spfe_obs::metrics::METRICS_SCHEMA,
                snap.sessions_opened,
                snap.sessions_failed(),
                snap.drivers.len(),
                snap.bytes_total()
            ),
            DocKind::Metrics,
        ));
    }
    if schema == AUDIT_SCHEMA {
        let doc = parse_audit(src)?;
        let leaks: Vec<&str> = doc
            .reports
            .iter()
            .filter(|r| !r.ok)
            .map(|r| r.driver.as_str())
            .collect();
        if !leaks.is_empty() {
            return Err(format!("audit verdict `leak` for: {}", leaks.join(", ")));
        }
        return Ok((
            format!(
                "valid {AUDIT_SCHEMA} — {} driver(s), {} variant(s), {} seed(s), all verdicts ok",
                doc.reports.len(),
                doc.variants,
                doc.seeds.len()
            ),
            DocKind::Audit,
        ));
    }
    let suite = spfe_obs::parse_suite(src)?;
    if suite.reports.is_empty() {
        return Err("empty `reports` array".into());
    }
    let modexps: u64 = suite
        .reports
        .iter()
        .map(|r| r.op_count(spfe_obs::Op::Modexp))
        .sum();
    if spfe_obs::enabled() && modexps == 0 {
        return Err("no nonzero `modexp` counter in any report".into());
    }
    Ok((
        format!(
            "valid {} — {} report(s), {modexps} modexps, threads={}",
            suite.schema(),
            suite.reports.len(),
            suite.threads
        ),
        DocKind::Cost(suite.version),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(fp_seed: u8) -> AuditReport {
        let fp = |tag: u8| spfe::obs::audit::to_hex(&spfe::obs::audit::sha256(&[tag, fp_seed]));
        AuditReport {
            driver: "xor2".into(),
            servers: 2,
            correctness: true,
            server_oblivious: true,
            fault_masked: true,
            divergences: vec![],
            parties: vec![
                PartyReport {
                    party: "client".into(),
                    fingerprint: fp(0),
                    events: 4,
                    sent_bytes: 100,
                    recv_bytes: 40,
                    labels: vec![("q".into(), 100), ("a".into(), 40)],
                },
                PartyReport {
                    party: "server0".into(),
                    fingerprint: fp(1),
                    events: 2,
                    sent_bytes: 20,
                    recv_bytes: 50,
                    labels: vec![("q".into(), 50), ("a".into(), 20)],
                },
                PartyReport {
                    party: "server1".into(),
                    fingerprint: fp(2),
                    events: 2,
                    sent_bytes: 20,
                    recv_bytes: 50,
                    labels: vec![("q".into(), 50), ("a".into(), 20)],
                },
            ],
        }
    }

    #[test]
    fn audit_json_roundtrips_through_parse_audit() {
        let reports = [sample_report(7)];
        let doc = parse_audit(&audit_json(4, &reports)).expect("roundtrip");
        assert_eq!(doc.threads, 4);
        assert_eq!(doc.variants, NUM_VARIANTS as u64);
        assert_eq!(doc.seeds, AUDIT_SEEDS.to_vec());
        assert_eq!(doc.reports.len(), 1);
        assert!(doc.reports[0].ok);
        assert_eq!(doc.reports[0].parties.len(), 3);
        assert_eq!(doc.reports[0].parties[0].0, "client");
        assert_eq!(
            doc.reports[0].parties[1].1,
            reports[0].parties[1].fingerprint
        );
    }

    #[test]
    fn compare_detects_fingerprint_drift_and_missing_drivers() {
        let base = parse_audit(&audit_json(1, &[sample_report(7)])).unwrap();
        assert!(compare_audits(&base, &[sample_report(7)]).is_empty());

        // A different fingerprint set against the same baseline.
        let drifted = compare_audits(&base, &[sample_report(8)]);
        assert!(
            drifted.iter().any(|d| d.contains("fingerprint")),
            "{drifted:?}"
        );

        // A driver the baseline never saw.
        let mut renamed = sample_report(7);
        renamed.driver = "novel".into();
        let diffs = compare_audits(&base, &[renamed]);
        assert!(diffs
            .iter()
            .any(|d| d.contains("missing from the baseline")));
        assert!(diffs.iter().any(|d| d.contains("not audited")));
    }

    #[test]
    fn compare_flags_leak_verdicts_on_either_side() {
        let mut leaky = sample_report(7);
        leaky.server_oblivious = false;
        leaky.divergences.push("v1: server0 moved".into());
        let base = parse_audit(&audit_json(1, &[sample_report(7)])).unwrap();
        let diffs = compare_audits(&base, &[leaky.clone()]);
        assert!(diffs.iter().any(|d| d.contains("server0 moved")));

        let leaky_base = parse_audit(&audit_json(1, &[leaky])).unwrap();
        let diffs = compare_audits(&leaky_base, &[sample_report(7)]);
        assert!(diffs.iter().any(|d| d.contains("baseline verdict")));
    }

    /// A minimal but complete v1 cost suite (mirrors the fixture the
    /// `spfe-obs` suite tests pin).
    const COST_V1_DOC: &str = r#"{
      "schema": "spfe-cost-report/v1",
      "threads": 1,
      "reports": [
        {"experiment":"e1","protocol":"p","elapsed_ns":9,
         "spans":[{"path":"s","calls":1,"ns":7}],
         "ops":[{"name":"modexp","count":3,"deterministic":true}],
         "comm":{"up_bytes":1,"down_bytes":2,"messages":1,"half_rounds":1,
                 "labels":[{"label":"q","up_bytes":1,"up_msgs":1,"down_bytes":0,"down_msgs":0}]}}
      ]
    }"#;

    #[test]
    fn validate_doc_classifies_mixed_schema_files() {
        let audit = audit_json(1, &[sample_report(3)]);
        let (summary, kind) = validate_doc(&audit).expect("audit doc");
        assert_eq!(kind, DocKind::Audit);
        assert!(summary.contains("spfe-audit/v1"));
        assert!(validate_doc("{\"schema\": \"spfe-audit/v1\", \"threads\": 1}").is_err());
        assert!(validate_doc("{\"threads\": 1}").is_err());

        // A mixed batch — an audit doc and a metrics snapshot between
        // cost suites of different versions — classifies file-by-file,
        // the tally `validate` prints: v1=1 v3=1 audit=1 metrics=1.
        let cost_v3 = spfe_obs::suite_json(
            2,
            &[spfe_obs::CostReport {
                experiment: "e1".into(),
                protocol: "spir".into(),
                ops: vec![spfe_obs::OpStat {
                    op: spfe_obs::Op::Modexp,
                    count: 17,
                }],
                ..Default::default()
            }],
        );
        let registry = spfe_obs::metrics::Metrics::new();
        registry.session_opened();
        registry.session_closed(
            "xor2",
            "relay",
            Ok(()),
            spfe_obs::metrics::SessionUsage {
                bytes_in: 64,
                bytes_out: 32,
                ..Default::default()
            },
        );
        let metrics_doc = registry.snapshot().to_json();
        let (summary, kind) = validate_doc(&metrics_doc).expect("metrics doc");
        assert_eq!(kind, DocKind::Metrics);
        assert!(summary.contains("spfe-metrics/v1"));
        let mut audits = 0usize;
        let mut metrics = 0usize;
        let mut by_version = [0usize; 3];
        for doc in [
            COST_V1_DOC,
            audit.as_str(),
            cost_v3.as_str(),
            metrics_doc.as_str(),
        ] {
            let (_, kind) = validate_doc(doc).expect("each mixed file is valid");
            match kind {
                DocKind::Audit => audits += 1,
                DocKind::Metrics => metrics += 1,
                DocKind::Cost(v) => by_version[v as usize - 1] += 1,
            }
        }
        assert_eq!(audits, 1);
        assert_eq!(metrics, 1);
        assert_eq!(by_version, [1, 0, 1]);
    }

    #[test]
    fn audit_verdict_leak_fails_validation() {
        let mut leaky = sample_report(7);
        leaky.fault_masked = false;
        let doc = audit_json(1, &[leaky]);
        let err = validate_doc(&doc).unwrap_err();
        assert!(err.contains("leak"), "{err}");
    }
}
