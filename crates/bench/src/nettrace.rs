//! Cross-process session-trace merging (DESIGN.md §17).
//!
//! `spfe-client --trace` and `spfe-server --trace` each write a Perfetto
//! JSON journal of their own half of a networked run: per-session slices
//! plus one Lamport-stamped instant per wire send/receive. The two files
//! share no wall clock — each process stamps microseconds from its own
//! trace epoch — so this module correlates them *causally*: the client's
//! n-th send of a session must pair with the server's n-th receive on
//! the same ordered stream, and the receiver's Lamport stamp must be
//! strictly greater than the sender's.
//!
//! [`parse_party`] reads one party's journal back into structured form;
//! [`merge`] pairs the two parties' wire events, checks the causal gate,
//! and renders one merged Perfetto timeline: one process track per party
//! (plus an `on-wire` track of synthesized transfer slices), flow-event
//! arrows from every send to its matching receive, and the server's
//! clock shifted by the midpoint of the feasibility interval that the
//! matched pairs induce. The *gate* never consults timestamps — wall
//! clocks are cosmetic; causal consistency is decided by Lamport stamps,
//! pair counts, and byte totals alone, so the check is deterministic
//! under arbitrary scheduling.
//!
//! The `spfe-tables net-trace` subcommand is the CLI wrapper; the CI
//! smoke stage runs it over the journals captured alongside the fifo
//! smoke run and fails the build on any violation.

use spfe_obs::json::{self, escape, Json};
use spfe_obs::metrics::MetricsSnapshot;

/// One session slice of a party's journal: `session:<driver>` with the
/// `(session, mode)` tag from the open event.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSlice {
    /// Session identifier (from the Hello frame).
    pub session: u64,
    /// Driver (experiment) name.
    pub driver: String,
    /// Session mode code (0 = relay, 1 = compute).
    pub mode: u64,
    /// Journal thread the session ran on.
    pub tid: u64,
    /// Slice begin, microseconds in the party's own clock.
    pub begin_us: f64,
    /// Slice end, microseconds in the party's own clock.
    pub end_us: f64,
}

/// One Lamport-stamped wire instant of a party's journal.
#[derive(Debug, Clone, PartialEq)]
pub struct NetEvent {
    /// The session the event belongs to (0 when outside any slice).
    pub session: u64,
    /// Journal thread.
    pub tid: u64,
    /// Event time, microseconds in the party's own clock.
    pub ts_us: f64,
    /// Protocol label of the frame.
    pub label: String,
    /// `true` for a send, `false` for a receive.
    pub send: bool,
    /// Payload bytes of the frame.
    pub bytes: u64,
    /// Half-round counter carried on the frame.
    pub half_round: u64,
    /// The party's Lamport stamp at the event.
    pub lamport: u64,
}

/// One party's journal, parsed back from its Perfetto JSON export.
#[derive(Debug, Clone, Default)]
pub struct PartyTrace {
    /// Session slices, in journal order.
    pub sessions: Vec<SessionSlice>,
    /// Wire events, in journal order, session-attributed.
    pub events: Vec<NetEvent>,
}

impl PartyTrace {
    /// The session slice for `session`, if the party journalled it.
    pub fn session(&self, session: u64) -> Option<&SessionSlice> {
        self.sessions.iter().find(|s| s.session == session)
    }

    /// Wire events of one session with the given direction, journal order.
    pub fn session_events(&self, session: u64, send: bool) -> Vec<&NetEvent> {
        self.events
            .iter()
            .filter(|e| e.session == session && e.send == send)
            .collect()
    }
}

/// Parses one party's `--trace` output back into structured form.
///
/// Net instants are attributed to the enclosing session slice on the
/// same journal thread (the exporters emit each thread's events in
/// order, so a per-thread stack of open slices is exact).
///
/// # Errors
///
/// A human-readable message on malformed JSON or a document without a
/// `traceEvents` array.
pub fn parse_party(src: &str) -> Result<PartyTrace, String> {
    let doc = json::parse(src)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    let mut party = PartyTrace::default();
    // Per-thread stack of indices into `party.sessions` still open.
    let mut open: Vec<(u64, Vec<usize>)> = Vec::new();
    let stack_of = |open: &mut Vec<(u64, Vec<usize>)>, tid: u64| -> usize {
        match open.iter().position(|(t, _)| *t == tid) {
            Some(i) => i,
            None => {
                open.push((tid, Vec::new()));
                open.len() - 1
            }
        }
    };
    for e in events {
        let cat = e.get("cat").and_then(Json::as_str).unwrap_or("");
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or("");
        let tid = e.get("tid").and_then(Json::as_u64).unwrap_or(0);
        let ts = e.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
        match (cat, ph) {
            ("session", "B") => {
                let name = e.get("name").and_then(Json::as_str).unwrap_or("");
                let driver = name.strip_prefix("session:").unwrap_or(name).to_owned();
                let args = e.get("args");
                let session = args
                    .and_then(|a| a.get("session"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                let mode = args
                    .and_then(|a| a.get("mode"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                let idx = party.sessions.len();
                party.sessions.push(SessionSlice {
                    session,
                    driver,
                    mode,
                    tid,
                    begin_us: ts,
                    end_us: ts,
                });
                let s = stack_of(&mut open, tid);
                open[s].1.push(idx);
            }
            ("session", "E") => {
                let s = stack_of(&mut open, tid);
                if let Some(idx) = open[s].1.pop() {
                    party.sessions[idx].end_us = ts;
                }
            }
            ("net", _) => {
                let s = stack_of(&mut open, tid);
                let session = open[s]
                    .1
                    .last()
                    .map_or(0, |&idx| party.sessions[idx].session);
                let args = e.get("args");
                let field = |key: &str| args.and_then(|a| a.get(key)).and_then(Json::as_u64);
                party.events.push(NetEvent {
                    session,
                    tid,
                    ts_us: ts,
                    label: e
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_owned(),
                    send: args.and_then(|a| a.get("dir")).and_then(Json::as_str) == Some("send"),
                    bytes: field("bytes").unwrap_or(0),
                    half_round: field("half_round").unwrap_or(0),
                    lamport: field("lamport").unwrap_or(0),
                });
            }
            _ => {}
        }
    }
    Ok(party)
}

/// A matched send → receive pair across the two parties.
#[derive(Debug, Clone)]
struct Flow {
    session: u64,
    label: String,
    /// `true`: client sent, server received.
    client_to_server: bool,
    send_ts_us: f64,
    recv_ts_us: f64,
    send_tid: u64,
    recv_tid: u64,
    send_lamport: u64,
    recv_lamport: u64,
    half_round: u64,
}

/// The outcome of one merge: violations (empty means the merged timeline
/// is causally consistent) plus summary counters for the report line.
#[derive(Debug, Clone)]
pub struct MergeReport {
    /// The experiment / capture id the merge was run under.
    pub id: String,
    /// Sessions present on both sides.
    pub sessions: usize,
    /// Matched send → receive pairs (flow arrows in the timeline).
    pub flows: usize,
    /// Microseconds added to server timestamps in the merged timeline.
    pub offset_us: f64,
    /// Every causal-consistency violation found, human-readable.
    pub violations: Vec<String>,
}

impl MergeReport {
    /// One summary line for logs: id, counters, verdict.
    pub fn summary(&self) -> String {
        if self.violations.is_empty() {
            format!(
                "net-trace {}: sessions={} flows={} offset_us={:.3} causally consistent",
                self.id, self.sessions, self.flows, self.offset_us
            )
        } else {
            format!(
                "net-trace {}: sessions={} flows={} violations={}",
                self.id,
                self.sessions,
                self.flows,
                self.violations.len()
            )
        }
    }
}

/// Pairs one direction of one session and appends the matched flows,
/// checking the Lamport gate, label agreement, and byte agreement.
fn pair_direction(
    session: u64,
    client_to_server: bool,
    sends: &[&NetEvent],
    recvs: &[&NetEvent],
    flows: &mut Vec<Flow>,
    violations: &mut Vec<String>,
) {
    let dir = if client_to_server {
        "client->server"
    } else {
        "server->client"
    };
    if sends.len() != recvs.len() {
        violations.push(format!(
            "session {session}: {dir} sent {} frames but {} were received",
            sends.len(),
            recvs.len()
        ));
    }
    for (s, r) in sends.iter().zip(recvs.iter()) {
        if s.label != r.label {
            violations.push(format!(
                "session {session}: {dir} pairing mismatch: sent \"{}\", received \"{}\"",
                s.label, r.label
            ));
        }
        if s.bytes != r.bytes {
            violations.push(format!(
                "session {session}: {dir} \"{}\": sent {} bytes, received {}",
                s.label, s.bytes, r.bytes
            ));
        }
        if r.lamport <= s.lamport {
            violations.push(format!(
                "session {session}: {dir} \"{}\": receive stamp {} is not after send stamp {}",
                s.label, r.lamport, s.lamport
            ));
        }
        flows.push(Flow {
            session,
            label: s.label.clone(),
            client_to_server,
            send_ts_us: s.ts_us,
            recv_ts_us: r.ts_us,
            send_tid: s.tid,
            recv_tid: r.tid,
            send_lamport: s.lamport,
            recv_lamport: r.lamport,
            half_round: s.half_round,
        });
    }
}

/// Merges a client and a server journal into one Perfetto timeline and
/// runs the causal-consistency gate. Returns the rendered timeline and
/// the report; the timeline is produced even when the gate fails, so a
/// violating run can still be inspected.
pub fn merge(id: &str, client: &PartyTrace, server: &PartyTrace) -> (String, MergeReport) {
    let mut violations = Vec::new();
    let mut flows: Vec<Flow> = Vec::new();
    // Session sets must agree before pairing makes sense.
    for s in &client.sessions {
        if server.session(s.session).is_none() {
            violations.push(format!(
                "session {} ({}): journalled by the client only",
                s.session, s.driver
            ));
        }
    }
    for s in &server.sessions {
        if client.session(s.session).is_none() {
            violations.push(format!(
                "session {} ({}): journalled by the server only",
                s.session, s.driver
            ));
        }
    }
    let mut common = 0usize;
    for cs in &client.sessions {
        let Some(ss) = server.session(cs.session) else {
            continue;
        };
        common += 1;
        if cs.driver != ss.driver || cs.mode != ss.mode {
            violations.push(format!(
                "session {}: parties disagree on (driver, mode): client ({}, {}), server ({}, {})",
                cs.session, cs.driver, cs.mode, ss.driver, ss.mode
            ));
        }
        pair_direction(
            cs.session,
            true,
            &client.session_events(cs.session, true),
            &server.session_events(cs.session, false),
            &mut flows,
            &mut violations,
        );
        pair_direction(
            cs.session,
            false,
            &server.session_events(cs.session, true),
            &client.session_events(cs.session, false),
            &mut flows,
            &mut violations,
        );
        // Half-round counters are carried on the frames themselves, so
        // the deepest half-round each side journalled must agree.
        let depth = |p: &PartyTrace| {
            p.events
                .iter()
                .filter(|e| e.session == cs.session)
                .map(|e| e.half_round)
                .max()
                .unwrap_or(0)
        };
        let (cd, sd) = (depth(client), depth(server));
        if cd != sd {
            violations.push(format!(
                "session {}: half-round depth disagrees: client {cd}, server {sd}",
                cs.session
            ));
        }
    }
    // Cosmetic clock alignment: shift server time so every matched pair
    // is feasible (send before receive) where possible. Each pair bounds
    // the offset on one side; take the midpoint of the interval.
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    for f in &flows {
        if f.client_to_server {
            // client send + 0 <= server recv + offset
            lo = lo.max(f.send_ts_us - f.recv_ts_us);
        } else {
            // server send + offset <= client recv
            hi = hi.min(f.recv_ts_us - f.send_ts_us);
        }
    }
    let offset_us = match (lo.is_finite(), hi.is_finite()) {
        (true, true) => (lo + hi) / 2.0,
        (true, false) => lo,
        (false, true) => hi,
        (false, false) => 0.0,
    };
    let report = MergeReport {
        id: id.to_owned(),
        sessions: common,
        flows: flows.len(),
        offset_us,
        violations,
    };
    (render(id, client, server, &flows, offset_us), report)
}

const CLIENT_PID: u64 = 1;
const SERVER_PID: u64 = 2;
const WIRE_PID: u64 = 3;

fn ts(us: f64) -> String {
    format!("{us:.3}")
}

/// Renders the merged Perfetto timeline: metadata naming the three
/// process tracks, both parties' session slices and wire instants
/// (server clock shifted by `offset_us`), one flow arrow per matched
/// pair, and one synthesized `on-wire` slice per pair showing the frame
/// in transit.
fn render(
    id: &str,
    client: &PartyTrace,
    server: &PartyTrace,
    flows: &[Flow],
    offset_us: f64,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"schema\":\"spfe-net-trace/v1\",\"id\":\"{}\",\"server_offset_us\":{:.3}}},\"traceEvents\":[",
        escape(id),
        offset_us
    ));
    let mut first = true;
    let mut emit = |out: &mut String, ev: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&ev);
    };
    for (pid, name) in [
        (CLIENT_PID, "spfe-client"),
        (SERVER_PID, "spfe-server"),
        (WIRE_PID, "on-wire"),
    ] {
        emit(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
    }
    let party = |out: &mut String,
                 emit: &mut dyn FnMut(&mut String, String),
                 p: &PartyTrace,
                 pid: u64,
                 shift: f64| {
        for s in &p.sessions {
            emit(out, format!(
                "{{\"name\":\"session:{}\",\"cat\":\"session\",\"ph\":\"B\",\"ts\":{},\"pid\":{pid},\"tid\":{},\"args\":{{\"session\":{},\"mode\":{}}}}}",
                escape(&s.driver), ts(s.begin_us + shift), s.tid, s.session, s.mode
            ));
            emit(out, format!(
                "{{\"name\":\"session:{}\",\"cat\":\"session\",\"ph\":\"E\",\"ts\":{},\"pid\":{pid},\"tid\":{}}}",
                escape(&s.driver), ts(s.end_us.max(s.begin_us) + shift), s.tid
            ));
        }
        for e in &p.events {
            let dir = if e.send { "send" } else { "recv" };
            emit(out, format!(
                "{{\"name\":\"{}\",\"cat\":\"net\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{},\"args\":{{\"dir\":\"{dir}\",\"bytes\":{},\"half_round\":{},\"lamport\":{},\"session\":{}}}}}",
                escape(&e.label), ts(e.ts_us + shift), e.tid, e.bytes, e.half_round, e.lamport, e.session
            ));
        }
    };
    party(&mut out, &mut emit, client, CLIENT_PID, 0.0);
    party(&mut out, &mut emit, server, SERVER_PID, offset_us);
    for (i, f) in flows.iter().enumerate() {
        let (send_pid, recv_pid, send_shift, recv_shift) = if f.client_to_server {
            (CLIENT_PID, SERVER_PID, 0.0, offset_us)
        } else {
            (SERVER_PID, CLIENT_PID, offset_us, 0.0)
        };
        let send_ts = f.send_ts_us + send_shift;
        let recv_ts = f.recv_ts_us + recv_shift;
        emit(&mut out, format!(
            "{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{i},\"ts\":{},\"pid\":{send_pid},\"tid\":{}}}",
            escape(&f.label), ts(send_ts), f.send_tid
        ));
        emit(&mut out, format!(
            "{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{i},\"ts\":{},\"pid\":{recv_pid},\"tid\":{}}}",
            escape(&f.label), ts(recv_ts), f.recv_tid
        ));
        // The synthesized in-transit slice: one wire track per session.
        let dur = (recv_ts - send_ts).max(0.001);
        emit(&mut out, format!(
            "{{\"name\":\"{}\",\"cat\":\"wire-span\",\"ph\":\"X\",\"ts\":{},\"dur\":{dur:.3},\"pid\":{WIRE_PID},\"tid\":{},\"args\":{{\"half_round\":{},\"lamport_send\":{},\"lamport_recv\":{}}}}}",
            escape(&f.label), ts(send_ts), f.session, f.half_round, f.send_lamport, f.recv_lamport
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Cross-checks the server journal against the server's own metrics
/// snapshot: every payload byte the registry metered must appear on the
/// journal's wire events exactly once. The reconciliation is mode-aware
/// because the two layers count differently: the journal records *wire*
/// frames, while the registry meters *logical* traffic — a relay session
/// echoes every received Msg verbatim (journalled as a send) but meters
/// it only once, by its logical direction flag; a compute session meters
/// incoming frames as `bytes_in` and originated replies as `bytes_out`.
/// Returns violations.
pub fn check_against_metrics(server: &PartyTrace, snap: &MetricsSnapshot) -> Vec<String> {
    let mut violations = Vec::new();
    let mut expected = 0u64;
    for s in &server.sessions {
        let sum = |send: bool| -> u64 {
            server
                .session_events(s.session, send)
                .iter()
                .map(|e| e.bytes)
                .sum()
        };
        let (recv, sent) = (sum(false), sum(true));
        if s.mode == 0 {
            // Relay: the echo stream mirrors the received stream byte
            // for byte (Bye is received only, but carries no payload),
            // and the registry counted each received Msg exactly once.
            if sent != recv {
                violations.push(format!(
                    "relay session {}: journal echoed {sent} bytes of {recv} received",
                    s.session
                ));
            }
            expected += recv;
        } else {
            expected += recv + sent;
        }
    }
    let metered = snap.bytes_in + snap.bytes_out;
    if expected != metered {
        violations.push(format!(
            "server journal carried {expected} payload bytes but the metrics registry \
             metered bytes_in + bytes_out = {metered}"
        ));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_obs::export::perfetto_json;
    use spfe_obs::trace::{Event, EventKind, ThreadTrace, Trace};

    fn stamp(half_round: u64, lamport: u64) -> u64 {
        (half_round << 32) | lamport
    }

    fn ev(kind: EventKind, t_ns: u64, label: &'static str, a: u64, b: u64) -> Event {
        Event {
            kind,
            t_ns,
            label,
            a,
            b,
        }
    }

    /// One relay-style session 7: the client sends q (64 B) and bye, the
    /// server echoes q back. Stamps follow the wire protocol: client
    /// tick=1, server observe→2 tick=3, client observe→4; bye tick=5,
    /// server observe→6.
    fn sample_parties() -> (PartyTrace, PartyTrace) {
        let client = Trace {
            threads: vec![ThreadTrace {
                thread: 0,
                events: vec![
                    ev(EventKind::NetSessionOpen, 0, "xor2", 7, 0),
                    ev(EventKind::NetSend, 1_000, "q", 64, stamp(1, 1)),
                    ev(EventKind::NetRecv, 5_000, "q", 64, stamp(1, 4)),
                    ev(EventKind::NetSend, 6_000, "net-bye", 0, stamp(1, 5)),
                    ev(EventKind::NetSessionClose, 7_000, "xor2", 7, 0),
                ],
                dropped: 0,
            }],
            cap: 64,
        };
        // The server clock is offset (its own epoch): everything ~1 ms
        // "earlier" than the client's, which alignment must absorb.
        let server = Trace {
            threads: vec![ThreadTrace {
                thread: 9,
                events: vec![
                    ev(EventKind::NetSessionOpen, 100, "xor2", 7, 0),
                    ev(EventKind::NetRecv, 500, "q", 64, stamp(1, 2)),
                    ev(EventKind::NetSend, 900, "q", 64, stamp(1, 3)),
                    ev(EventKind::NetRecv, 1_500, "net-bye", 0, stamp(1, 6)),
                    ev(EventKind::NetSessionClose, 1_600, "xor2", 7, 0),
                ],
                dropped: 0,
            }],
            cap: 64,
        };
        (
            parse_party(&perfetto_json(&client)).unwrap(),
            parse_party(&perfetto_json(&server)).unwrap(),
        )
    }

    #[test]
    fn parse_party_reads_back_sessions_and_stamped_events() {
        let (client, _) = sample_parties();
        assert_eq!(client.sessions.len(), 1);
        let s = &client.sessions[0];
        assert_eq!((s.session, s.driver.as_str(), s.mode), (7, "xor2", 0));
        assert!(s.begin_us < s.end_us);
        assert_eq!(client.events.len(), 3);
        let q = &client.events[0];
        assert_eq!((q.session, q.label.as_str(), q.send), (7, "q", true));
        assert_eq!((q.bytes, q.half_round, q.lamport), (64, 1, 1));
        // Events outside any session slice attribute to session 0.
        let stray = parse_party(
            "{\"traceEvents\":[{\"name\":\"x\",\"cat\":\"net\",\"ph\":\"i\",\"ts\":1,\
             \"pid\":1,\"tid\":2,\"args\":{\"dir\":\"send\",\"bytes\":3,\"half_round\":1,\
             \"lamport\":1}}]}",
        )
        .unwrap();
        assert_eq!(stray.events[0].session, 0);
    }

    #[test]
    fn merge_of_a_consistent_run_passes_the_gate() {
        let (client, server) = sample_parties();
        let (timeline, report) = merge("e1", &client, &server);
        assert_eq!(report.violations, Vec::<String>::new());
        assert_eq!(report.sessions, 1);
        assert_eq!(report.flows, 3, "q out, q echo, bye");
        // The merged document is valid JSON with both process tracks,
        // per-pair flow arrows, and synthesized on-wire slices.
        let doc = json::parse(&timeline).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(names.contains(&"spfe-client") && names.contains(&"spfe-server"));
        let count = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .count()
        };
        assert_eq!(count("s"), 3, "one flow start per matched pair");
        assert_eq!(count("f"), 3, "one flow finish per matched pair");
        assert_eq!(count("X"), 3, "one on-wire slice per matched pair");
        // Alignment made every on-wire slice start at its (aligned) send.
        for e in events {
            if e.get("ph").and_then(Json::as_str) == Some("X") {
                assert!(e.get("dur").and_then(Json::as_f64).unwrap() > 0.0);
            }
        }
    }

    #[test]
    fn merge_flags_causal_violations() {
        let (client, mut server) = sample_parties();
        // Corrupt the echo's receive stamp on the client side would need
        // rebuilding; easier: regress the server's receive stamp below
        // the client's send stamp.
        server.events[0].lamport = 1; // was 2, client sent with 1
        let (_, report) = merge("e1", &client, &server);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("not after send stamp")));
    }

    #[test]
    fn merge_flags_count_depth_and_membership_mismatches() {
        let (client, server) = sample_parties();
        // Missing server side entirely.
        let (_, report) = merge("e1", &client, &PartyTrace::default());
        assert!(report.violations.iter().any(|v| v.contains("client only")));
        // Dropped echo: server send unpaired and depth mismatch paths.
        let mut lossy = server.clone();
        lossy.events.retain(|e| !(e.send && e.label == "q"));
        let (_, report) = merge("e1", &client, &lossy);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("frames") && v.contains("received")));
        // Byte tampering on the paired frame.
        let mut tampered = server.clone();
        tampered.events[0].bytes = 63;
        let (_, report) = merge("e1", &client, &tampered);
        assert!(report.violations.iter().any(|v| v.contains("bytes")));
    }

    #[test]
    fn metrics_cross_check_compares_byte_totals() {
        let (_, server) = sample_parties();
        let mut snap = spfe_obs::metrics::Metrics::new().snapshot();
        // The relay session metered q (64 B) once, by its logical
        // direction; the echo and the 0-byte Bye add nothing.
        snap.bytes_in = 64;
        snap.bytes_out = 0;
        assert_eq!(check_against_metrics(&server, &snap), Vec::<String>::new());
        snap.bytes_out = 1;
        let violations = check_against_metrics(&server, &snap);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("bytes_in + bytes_out = 65"));
    }
}
