//! The service-health gate: turn `spfe-metrics/v1` snapshots into CI
//! verdicts (`spfe-tables serve-report`).
//!
//! Two modes, mirroring the cost-trend gate in [`crate::trend`]:
//!
//! * **Health** ([`check_health`]) — one snapshot, absolute rules: no
//!   failed sessions, nonzero traffic, and the registry's internal
//!   invariants intact (`opened == completed + failed + active`, every
//!   driver row summing up). This is what CI runs against the snapshot
//!   scraped after the networked smoke stage, replacing fragile greps
//!   over the server's stdout.
//! * **Drift** ([`compare_snapshots`]) — two snapshots of the *same*
//!   server run (e.g. mid-run and at shutdown): every monotonic counter
//!   must be non-decreasing (a counter going backwards means the scrapes
//!   are from different processes — a meaningless comparison the gate
//!   rejects loudly), and any *growth* in a failure counter pinpoints
//!   exactly which [`FailureKind`] fired in the window.
//!
//! Wall-clock histograms are deliberately not gated — latency varies run
//! to run; the deterministic session/byte counters are the gate surface,
//! same philosophy as the trend gate's exclusion of elapsed times.

use spfe_obs::metrics::{FailureKind, MetricsSnapshot};

/// One counter comparison from [`compare_snapshots`], flagged or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeDelta {
    /// Counter name (`sessions_opened`, `failure:io`, `bytes_in`, …).
    pub metric: String,
    /// Value in the earlier snapshot.
    pub baseline: u64,
    /// Value in the later snapshot.
    pub current: u64,
    /// Whether this comparison violated a gate rule.
    pub flagged: bool,
}

/// Outcome of a health check or a snapshot comparison.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeReport {
    /// Every comparison performed (empty for a plain health check).
    pub deltas: Vec<ServeDelta>,
    /// Human-readable rule violations; empty means the gate passes.
    pub violations: Vec<String>,
}

impl ServeReport {
    /// Whether the gate passes (no violations).
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Absolute health rules over one snapshot: every failure counter zero,
/// nonzero traffic, and the registry invariants intact. A snapshot with
/// zero opened sessions fails the traffic rule — a health gate that ran
/// before any session is not evidence of a working service.
pub fn check_health(snap: &MetricsSnapshot) -> ServeReport {
    let mut report = ServeReport::default();
    for kind in FailureKind::ALL {
        let n = snap.failure(kind);
        if n > 0 {
            report
                .violations
                .push(format!("{} session(s) failed with `{}`", n, kind.name()));
        }
    }
    if snap.sessions_opened == 0 {
        report
            .violations
            .push("no sessions served — nothing to attest".into());
    }
    if snap.bytes_total() == 0 {
        report
            .violations
            .push("no payload bytes transferred — sessions carried no traffic".into());
    }
    let settled = snap.sessions_completed + snap.sessions_failed() + snap.sessions_active;
    if snap.sessions_opened != settled {
        report.violations.push(format!(
            "registry invariant broken: opened={} but completed+failed+active={}",
            snap.sessions_opened, settled
        ));
    }
    for d in &snap.drivers {
        if d.sessions != d.completed + d.failed {
            report.violations.push(format!(
                "driver {}/{}: {} session(s) but completed+failed={}",
                d.driver,
                d.mode,
                d.sessions,
                d.completed + d.failed
            ));
        }
    }
    report
}

/// The monotonic counters of a snapshot, in a stable report order.
fn counters(snap: &MetricsSnapshot) -> Vec<(String, u64)> {
    let mut out = vec![
        ("sessions_opened".to_owned(), snap.sessions_opened),
        ("sessions_completed".to_owned(), snap.sessions_completed),
        ("stats_probes".to_owned(), snap.stats_probes),
        ("bytes_in".to_owned(), snap.bytes_in),
        ("bytes_out".to_owned(), snap.bytes_out),
        ("frames_in".to_owned(), snap.frames_in),
        ("frames_out".to_owned(), snap.frames_out),
    ];
    for kind in FailureKind::ALL {
        out.push((format!("failure:{}", kind.name()), snap.failure(kind)));
    }
    for d in &snap.drivers {
        let key = format!("driver:{}/{}", d.driver, d.mode);
        out.push((format!("{key}:sessions"), d.sessions));
        out.push((format!("{key}:failed"), d.failed));
        out.push((format!("{key}:bytes"), d.bytes_in + d.bytes_out));
    }
    out
}

/// Compares a later snapshot against an earlier one of the same server
/// run. Flags any monotonic counter that went backwards (the scrapes
/// cannot be from one run) and any failure counter that *grew* (failures
/// happened inside the window, attributed by kind and driver).
///
/// # Errors
///
/// When the later snapshot's uptime is below the baseline's — scrapes
/// from different processes compare nothing meaningful.
pub fn compare_snapshots(
    baseline: &MetricsSnapshot,
    current: &MetricsSnapshot,
) -> Result<ServeReport, String> {
    if current.uptime_micros < baseline.uptime_micros {
        return Err(format!(
            "current snapshot is younger than the baseline ({} µs < {} µs) — \
             not two scrapes of one server run",
            current.uptime_micros, baseline.uptime_micros
        ));
    }
    let mut report = ServeReport::default();
    let cur: Vec<(String, u64)> = counters(current);
    for (metric, base_value) in counters(baseline) {
        let cur_value = cur
            .iter()
            .find(|(m, _)| *m == metric)
            .map_or(0, |&(_, v)| v);
        let shrank = cur_value < base_value;
        let failure_grew = (metric.starts_with("failure:") || metric.ends_with(":failed"))
            && cur_value > base_value;
        if shrank {
            report.violations.push(format!(
                "{metric} went backwards ({base_value} → {cur_value}) — \
                 snapshots are not from the same server run"
            ));
        }
        if failure_grew {
            report.violations.push(format!(
                "{metric} grew {base_value} → {cur_value} inside the window"
            ));
        }
        report.deltas.push(ServeDelta {
            metric,
            baseline: base_value,
            current: cur_value,
            flagged: shrank || failure_grew,
        });
    }
    // Drivers only present in the later snapshot are new work, not drift;
    // record them so the report stays complete.
    for (metric, cur_value) in cur {
        if !report.deltas.iter().any(|d| d.metric == metric) {
            report.deltas.push(ServeDelta {
                metric,
                baseline: 0,
                current: cur_value,
                flagged: false,
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_obs::metrics::{Metrics, SessionUsage};

    fn usage(bytes_in: u64, bytes_out: u64) -> SessionUsage {
        SessionUsage {
            bytes_in,
            bytes_out,
            frames_in: 1,
            frames_out: 1,
            half_rounds: 2,
            wall_micros: 100,
        }
    }

    fn serving_registry() -> Metrics {
        let m = Metrics::new();
        m.session_opened();
        m.transfer(true, 64);
        m.transfer(false, 32);
        m.session_closed("xor2", "relay", Ok(()), usage(64, 32));
        m
    }

    #[test]
    fn clean_traffic_passes_the_health_gate() {
        let report = check_health(&serving_registry().snapshot());
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn each_failure_kind_fails_health_with_its_name() {
        let m = serving_registry();
        m.session_opened();
        m.session_closed(
            "hom_pir",
            "compute",
            Err(FailureKind::CodecReject),
            SessionUsage::default(),
        );
        let report = check_health(&m.snapshot());
        assert!(!report.ok());
        assert!(
            report.violations.iter().any(|v| v.contains("codec-reject")),
            "{report:?}"
        );
    }

    #[test]
    fn an_idle_server_is_not_healthy() {
        let report = check_health(&Metrics::new().snapshot());
        assert!(!report.ok(), "zero sessions must not attest health");
    }

    #[test]
    fn unchanged_snapshots_show_no_drift() {
        let snap = serving_registry().snapshot();
        let report = compare_snapshots(&snap, &snap).unwrap();
        assert!(report.ok(), "{report:?}");
        assert!(report.deltas.iter().all(|d| !d.flagged));
    }

    #[test]
    fn failure_growth_inside_the_window_flags_the_kind() {
        let m = serving_registry();
        let before = m.snapshot();
        m.session_opened();
        m.session_closed(
            "xor2",
            "relay",
            Err(FailureKind::TransferTimeout),
            SessionUsage::default(),
        );
        let report = compare_snapshots(&before, &m.snapshot()).unwrap();
        assert!(!report.ok());
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("failure:transfer-timeout")),
            "{report:?}"
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("driver:xor2/relay:failed")),
            "{report:?}"
        );
    }

    #[test]
    fn session_growth_inside_the_window_is_not_drift() {
        let m = serving_registry();
        let before = m.snapshot();
        m.session_opened();
        m.transfer(true, 128);
        m.session_closed("hom_pir", "compute", Ok(()), usage(128, 0));
        let report = compare_snapshots(&before, &m.snapshot()).unwrap();
        assert!(report.ok(), "{report:?}");
        let opened = report
            .deltas
            .iter()
            .find(|d| d.metric == "sessions_opened")
            .unwrap();
        assert_eq!((opened.baseline, opened.current), (1, 2));
    }

    #[test]
    fn a_backwards_counter_flags_mismatched_runs() {
        let m = serving_registry();
        let grown = m.snapshot();
        let fresh = serving_registry();
        fresh.session_opened();
        fresh.transfer(true, 1);
        fresh.session_closed("xor2", "relay", Ok(()), usage(1, 0));
        // Pretend the fresh registry's extra session existed first, then
        // "compare" against the original single-session snapshot: the
        // opened counter appears to go backwards.
        let mut older = fresh.snapshot();
        older.uptime_micros = grown.uptime_micros;
        let report = compare_snapshots(&older, &grown).unwrap();
        assert!(!report.ok());
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("went backwards")),
            "{report:?}"
        );
    }

    #[test]
    fn younger_current_snapshot_is_rejected() {
        let snap = serving_registry().snapshot();
        let mut younger = snap.clone();
        younger.uptime_micros = snap.uptime_micros.saturating_sub(1_000_000);
        let mut older = snap;
        older.uptime_micros += 1_000_000;
        assert!(compare_snapshots(&older, &younger).is_err());
    }
}
