//! Hierarchical wall-clock spans for protocol phases.
//!
//! [`span`] returns a guard; the time between creation and drop is added
//! to a process-global aggregate keyed by the span's full path — the
//! `/`-joined names of the enclosing spans *on the same thread* plus its
//! own. Worker threads start fresh paths (the pool does not inherit the
//! caller's stack), which keeps the model race-free and cheap; protocol
//! drivers time their phases on the orchestrating thread.

/// Aggregate for one span path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Full `/`-joined path, e.g. `"spir/server-scan"`.
    pub path: String,
    /// Number of completed spans at this path.
    pub calls: u64,
    /// Total wall-clock nanoseconds across those calls.
    pub ns: u64,
    /// Median per-call duration (log-bucket upper bound, see [`crate::histo`]).
    pub p50_ns: u64,
    /// 95th-percentile per-call duration (log-bucket upper bound).
    pub p95_ns: u64,
    /// 99th-percentile per-call duration (log-bucket upper bound).
    pub p99_ns: u64,
    /// Heap allocations attributed to this path itself (children
    /// excluded); zero unless built with `obs-alloc` (see [`crate::mem`]).
    pub allocs: u64,
    /// Heap bytes attributed to this path itself (children excluded).
    pub alloc_bytes: u64,
    /// Maximum live-heap gauge observed while a span at this path was
    /// open (children included), over all calls.
    pub peak_live_bytes: u64,
}

#[cfg(feature = "obs")]
mod imp {
    use super::SpanStat;
    use crate::histo::Histo;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::Mutex;
    use std::time::Instant;

    thread_local! {
        /// The active span names on this thread, outermost first.
        static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// Per-path aggregate held in the registry.
    #[derive(Default)]
    struct Agg {
        calls: u64,
        ns: u64,
        histo: Histo,
        allocs: u64,
        alloc_bytes: u64,
        peak_live_bytes: u64,
    }

    /// `path → aggregate`.
    static REGISTRY: Mutex<BTreeMap<String, Agg>> = Mutex::new(BTreeMap::new());

    pub struct SpanGuard {
        path: String,
        name: &'static str,
        start: Instant,
    }

    pub fn span(name: &str) -> SpanGuard {
        // Interning, path building, the stack push and the trace buffer
        // are instrumentation bookkeeping with warmup-dependent
        // allocation patterns (first call interns, first event grows the
        // buffer); pause the heap tallies so measured spans stay
        // bit-identical across reruns (DESIGN.md §12).
        let paused = crate::mem::pause();
        let name = intern(name);
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let mut path = String::new();
            for seg in stack.iter() {
                path.push_str(seg);
                path.push('/');
            }
            path.push_str(name);
            stack.push(name);
            path
        });
        crate::trace::on_span_open(name);
        drop(paused);
        crate::mem::frame_open();
        SpanGuard {
            path,
            name,
            start: Instant::now(),
        }
    }

    /// Interns a span name (the vocabulary is a few dozen phase labels, so
    /// the leaked cache stays tiny and makes the hot path allocation-free
    /// for repeated spans).
    fn intern(name: &str) -> &'static str {
        static CACHE: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        let mut cache = CACHE.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(hit) = cache.iter().find(|s| **s == name) {
            return hit;
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        cache.push(leaked);
        leaked
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let mem = crate::mem::frame_close();
            // From here on everything is bookkeeping charged to no span:
            // the trace buffer and registry allocate on first use, which
            // must not skew the parent frame (see `span`).
            let _paused = crate::mem::pause();
            STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
            crate::trace::on_span_close(self.name, mem);
            let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
            let entry = reg.entry(std::mem::take(&mut self.path)).or_default();
            entry.calls += 1;
            entry.ns = entry.ns.saturating_add(ns);
            entry.histo.record(ns);
            entry.allocs = entry.allocs.saturating_add(mem.allocs);
            entry.alloc_bytes = entry.alloc_bytes.saturating_add(mem.alloc_bytes);
            entry.peak_live_bytes = entry.peak_live_bytes.max(mem.peak_live_bytes);
        }
    }

    pub fn spans_snapshot() -> Vec<SpanStat> {
        REGISTRY
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(path, agg)| SpanStat {
                path: path.clone(),
                calls: agg.calls,
                ns: agg.ns,
                p50_ns: agg.histo.p50(),
                p95_ns: agg.histo.p95(),
                p99_ns: agg.histo.p99(),
                allocs: agg.allocs,
                alloc_bytes: agg.alloc_bytes,
                peak_live_bytes: agg.peak_live_bytes,
            })
            .collect()
    }

    pub fn reset_spans() {
        REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(not(feature = "obs"))]
mod imp {
    use super::SpanStat;

    pub struct SpanGuard {
        _priv: (),
    }

    #[inline(always)]
    pub fn span(_name: &str) -> SpanGuard {
        SpanGuard { _priv: () }
    }

    pub fn spans_snapshot() -> Vec<SpanStat> {
        Vec::new()
    }

    pub fn reset_spans() {}
}

/// RAII guard returned by [`span`]; dropping it records the elapsed time.
pub use imp::SpanGuard;

/// Opens a span named `name` nested under the thread's current span path.
///
/// Hold the guard for the duration of the phase:
///
/// ```
/// let _scan = spfe_obs::span("server-scan");
/// // ... the Ω(n) work ...
/// ```
#[must_use = "the span measures until the guard drops"]
pub fn span(name: &str) -> SpanGuard {
    imp::span(name)
}

/// All span aggregates, sorted by path.
pub fn spans_snapshot() -> Vec<SpanStat> {
    imp::spans_snapshot()
}

/// Clears all span aggregates (start of a measurement window).
pub fn reset_spans() {
    imp::reset_spans()
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    /// Span tests share the global registry; serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        crate::test_guard()
    }

    fn get(snapshot: &[SpanStat], path: &str) -> Option<(u64, u64)> {
        snapshot
            .iter()
            .find(|s| s.path == path)
            .map(|s| (s.calls, s.ns))
    }

    #[test]
    fn nesting_builds_slash_paths() {
        let _l = lock();
        reset_spans();
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        {
            let _outer = span("outer");
        }
        let snap = spans_snapshot();
        assert_eq!(get(&snap, "outer").map(|(c, _)| c), Some(2));
        assert_eq!(get(&snap, "outer/inner").map(|(c, _)| c), Some(1));
        assert!(get(&snap, "inner").is_none());
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let _l = lock();
        reset_spans();
        {
            let _a = span("a");
        }
        {
            let _b = span("b");
        }
        let snap = spans_snapshot();
        assert!(get(&snap, "a").is_some());
        assert!(get(&snap, "b").is_some());
        assert!(get(&snap, "a/b").is_none());
    }

    #[test]
    fn threads_have_independent_stacks() {
        let _l = lock();
        reset_spans();
        let _outer = span("main-outer");
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = span("worker-span");
            });
        });
        drop(_outer);
        let snap = spans_snapshot();
        assert!(get(&snap, "worker-span").is_some());
        assert!(get(&snap, "main-outer/worker-span").is_none());
    }

    #[test]
    fn time_accumulates() {
        let _l = lock();
        reset_spans();
        for _ in 0..3 {
            let _g = span("timed");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = spans_snapshot();
        let (calls, ns) = get(&snap, "timed").unwrap();
        assert_eq!(calls, 3);
        assert!(ns >= 3 * 2_000_000, "ns={ns}");
        let stat = snap.iter().find(|s| s.path == "timed").unwrap();
        assert!(stat.p50_ns >= 2_000_000, "p50={}", stat.p50_ns);
        assert!(stat.p95_ns >= stat.p50_ns);
        assert!(stat.p99_ns >= stat.p95_ns);
    }

    #[test]
    fn reset_clears() {
        let _l = lock();
        reset_spans();
        {
            let _g = span("gone");
        }
        assert!(!spans_snapshot().is_empty());
        reset_spans();
        assert!(spans_snapshot().is_empty());
    }
}
