//! A minimal JSON parser — just enough to validate and introspect the
//! cost reports this workspace emits (`BENCH_costs.json`), with no
//! external dependency and no Python in CI.
//!
//! Supports the full JSON value grammar with two deliberate limits:
//! numbers are `i64` when integral and `f64` otherwise, and strings
//! accept the standard escapes (`\uXXXX` included, surrogate pairs
//! handled).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number.
    Int(i64),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on malformed input.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii");
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(b, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                *pos += 2;
                                let lo = parse_hex4(b, pos)?;
                                0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32
                            } else {
                                return Err("unpaired surrogate".into());
                            }
                        } else {
                            hi as u32
                        };
                        out.push(char::from_u32(code).ok_or("invalid codepoint")?);
                    }
                    _ => return Err(format!("invalid escape at byte {pos}", pos = *pos - 1)),
                }
            }
            Some(_) => {
                // Copy a run of plain UTF-8 bytes.
                let run_start = *pos;
                while let Some(&c) = b.get(*pos) {
                    if c == b'"' || c == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[run_start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u16, String> {
    let hex = b
        .get(*pos..*pos + 4)
        .ok_or("truncated \\u escape")
        .and_then(|h| std::str::from_utf8(h).map_err(|_| "truncated \\u escape"))?;
    *pos += 4;
    u16::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

/// Escapes `s` as the *contents* of a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn nested_structure_and_lookup() {
        let doc = parse(r#"{"a": [1, {"b": "c"}], "n": 9}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(9));
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0], Json::Int(1));
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("c"));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" back\\slash \u{1F600}";
        let encoded = format!("\"{}\"", escape(original));
        assert_eq!(parse(&encoded).unwrap(), Json::Str(original.into()));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
        // Surrogate pair for U+1F600.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn big_u64_counts_fit_i64() {
        // Counts in reports are u64 but in practice far below i64::MAX;
        // i64::MAX itself still parses exactly.
        let max = i64::MAX.to_string();
        assert_eq!(parse(&max).unwrap().as_u64(), Some(i64::MAX as u64));
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let doc = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(doc.get("k").and_then(Json::as_u64), Some(2));
    }
}
