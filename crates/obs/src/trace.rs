//! The event-trace journal: a bounded per-thread event log behind the
//! aggregate probes.
//!
//! Where spans and op counters answer "how much, in total", the journal
//! answers "when, in what order, inside which phase": every span
//! open/close, every op-counter delta attributed to its enclosing span,
//! every wire message with label and byte count, and every injected fault
//! and retry becomes a timestamped [`Event`]. The exporters in
//! [`crate::export`] turn a captured [`Trace`] into a Perfetto/Chrome
//! `trace_event` JSON or a flamegraph folded-stack file.
//!
//! Design:
//!
//! * **Off by default.** [`set_tracing`] flips one global atomic; with it
//!   off, every hook is a single relaxed load and an early return, so the
//!   journal costs nothing on metered production paths.
//! * **Per-thread, lock-free recording.** Each thread appends to its own
//!   thread-local buffer — no shared-state synchronization on the hot
//!   path. Buffers drain into a global sink when a thread's outermost
//!   span closes (and at thread exit); [`take`] collects the sink.
//! * **Bounded.** Each thread records at most `SPFE_TRACE_CAP` events per
//!   measurement window (default `65536`, override with [`set_cap`]);
//!   past the cap the *earliest* events are kept — so the journal's
//!   prefix stays well-formed — and the overflow is counted in
//!   [`ThreadTrace::dropped`].
//! * **Span-attributed op deltas.** While tracing, [`crate::count`] adds
//!   into an accumulator frame for the innermost open span on the calling
//!   thread; the nonzero deltas are emitted as [`EventKind::OpDelta`]
//!   events immediately before the span's close. These are *self*
//!   tallies: a frame accrues only while its span is innermost, so
//!   per-span op flamegraphs add up without double counting. Counts on
//!   threads with no open span (e.g. pool workers) still reach the global
//!   counters but are not trace-attributed.
//!
//! Toggling [`set_tracing`] mid-span is supported but loses the events
//! from the off period; a span whose open was not traced does not emit a
//! close, so a captured trace is always structurally balanced per thread.

/// Default per-thread event cap per measurement window.
pub const DEFAULT_CAP: usize = 1 << 16;

/// Environment variable overriding [`DEFAULT_CAP`].
pub const CAP_ENV: &str = "SPFE_TRACE_CAP";

/// What one [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened; `label` is the span name.
    SpanOpen,
    /// A span closed; `label` is the span name.
    SpanClose,
    /// An op-counter delta for the span closing right after; `label` is
    /// the op name ([`crate::Op::name`]), `a` the delta.
    OpDelta,
    /// A heap-allocation delta for the span closing right after; `label`
    /// is [`crate::mem::ALLOCS_LABEL`] or [`crate::mem::ALLOC_BYTES_LABEL`],
    /// `a` the span's self delta. Only emitted under `obs-alloc`.
    MemDelta,
    /// A client→server message; `label` is the wire label, `a` the byte
    /// count, `b` the server index.
    WireUp,
    /// A server→client message; fields as for [`EventKind::WireUp`].
    WireDown,
    /// A transport fault injection; `label` is the fault class, `b` the
    /// server index.
    Fault,
    /// A delivery retry; `label` is the wire label, `a` the attempt
    /// number (1 = first retry), `b` the server index.
    Retry,
    /// A party's view was sealed (fingerprinted) by the leakage-audit
    /// layer; `label` is `"client"` or `"server"`, `a` the number of
    /// messages in the view, `b` the server index (0 for the client).
    ViewSeal,
    /// A networked session span opened on this party; `label` is the
    /// driver name (interned), `a` the session id, `b` the session mode
    /// (0 = relay, 1 = compute). Frame events that follow on the same
    /// thread belong to this session until the matching close.
    NetSessionOpen,
    /// The networked session span closed; fields as for
    /// [`EventKind::NetSessionOpen`].
    NetSessionClose,
    /// A session frame left this party, stamped by its Lamport clock;
    /// `label` is the frame label (interned), `a` the payload byte count,
    /// `b` packs `half_round << 32 | lamport`.
    NetSend,
    /// A session frame arrived at this party; fields as for
    /// [`EventKind::NetSend`], with `b` carrying the *receiver's* Lamport
    /// stamp (strictly greater than the sender's, by the clock's merge
    /// rule).
    NetRecv,
}

/// One timestamped journal entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Nanoseconds since the process trace epoch (monotone per thread).
    pub t_ns: u64,
    /// Span name, wire label, op name, or fault class (see [`EventKind`]).
    pub label: &'static str,
    /// First payload word (byte count, op delta, attempt — see the kind).
    pub a: u64,
    /// Second payload word (server index — see the kind).
    pub b: u64,
}

/// The journal of one thread over one measurement window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadTrace {
    /// Stable per-process thread number (assignment order, not an OS id).
    pub thread: u64,
    /// Events in recording order.
    pub events: Vec<Event>,
    /// Events discarded after the cap was reached.
    pub dropped: u64,
}

/// Everything captured between two [`take`]/[`reset`] calls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Per-thread journals, sorted by thread number.
    pub threads: Vec<ThreadTrace>,
    /// The per-thread cap that was in force.
    pub cap: usize,
}

impl Trace {
    /// Total events across all threads.
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Total dropped events across all threads.
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }
}

#[cfg(feature = "obs")]
mod imp {
    use super::{Event, EventKind, ThreadTrace, Trace, CAP_ENV, DEFAULT_CAP};
    use crate::counter::Op;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    static TRACING: AtomicBool = AtomicBool::new(false);
    /// 0 = unset (resolve from the environment on first use).
    static CAP: AtomicUsize = AtomicUsize::new(0);
    /// Bumped by `take`/`reset`; thread-locals lazily discard stale state.
    static GEN: AtomicU64 = AtomicU64::new(1);
    static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
    /// Journals flushed from their owning threads, in flush order per
    /// thread (appends keep each thread's internal order).
    static SINK: Mutex<Vec<ThreadTrace>> = Mutex::new(Vec::new());

    fn epoch() -> &'static Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now)
    }

    fn now_ns() -> u64 {
        u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn resolve_cap() -> usize {
        let c = CAP.load(Ordering::Relaxed);
        if c != 0 {
            return c;
        }
        let c = std::env::var(CAP_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAP);
        CAP.store(c, Ordering::Relaxed);
        c
    }

    const NUM_OPS: usize = Op::ALL.len();

    struct Local {
        thread: u64,
        gen: u64,
        cap: usize,
        recorded: usize,
        dropped: u64,
        buf: Vec<Event>,
        /// One op-delta accumulator per open traced span, innermost last.
        frames: Vec<[u64; NUM_OPS]>,
    }

    impl Local {
        fn new() -> Local {
            Local {
                thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
                gen: 0, // stale on purpose: first touch syncs to GEN
                cap: DEFAULT_CAP,
                recorded: 0,
                dropped: 0,
                buf: Vec::new(),
                frames: Vec::new(),
            }
        }

        /// Discards state from a previous measurement window.
        fn sync(&mut self) {
            let g = GEN.load(Ordering::Relaxed);
            if self.gen != g {
                self.gen = g;
                self.cap = resolve_cap();
                self.recorded = 0;
                self.dropped = 0;
                self.buf.clear();
                self.frames.clear();
            }
        }

        fn push(&mut self, ev: Event) {
            if self.recorded < self.cap {
                self.buf.push(ev);
                self.recorded += 1;
            } else {
                self.dropped += 1;
            }
        }

        fn flush(&mut self) {
            if self.buf.is_empty() && self.dropped == 0 {
                return;
            }
            let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
            let entry = match sink.iter_mut().find(|t| t.thread == self.thread) {
                Some(t) => t,
                None => {
                    sink.push(ThreadTrace {
                        thread: self.thread,
                        ..ThreadTrace::default()
                    });
                    sink.last_mut().unwrap()
                }
            };
            entry.events.append(&mut self.buf);
            entry.dropped += std::mem::take(&mut self.dropped);
        }
    }

    impl Drop for Local {
        fn drop(&mut self) {
            // Thread exit: whatever this thread recorded reaches the sink
            // even if no outermost span closed (only if still current).
            if self.gen == GEN.load(Ordering::Relaxed) {
                self.flush();
            }
        }
    }

    thread_local! {
        static LOCAL: RefCell<Local> = RefCell::new(Local::new());
    }

    fn with_local(f: impl FnOnce(&mut Local)) {
        // Ignore accesses during thread teardown (the destructor already
        // flushed; late probes have nowhere coherent to record).
        let _ = LOCAL.try_with(|l| {
            let mut l = l.borrow_mut();
            l.sync();
            f(&mut l);
        });
    }

    #[inline]
    pub fn tracing() -> bool {
        TRACING.load(Ordering::Relaxed)
    }

    pub fn set_tracing(on: bool) {
        if on {
            // Pin the epoch and cap before the first event needs them.
            let _ = epoch();
            let _ = resolve_cap();
        }
        TRACING.store(on, Ordering::Relaxed);
    }

    pub fn set_cap(cap: usize) {
        CAP.store(cap.max(1), Ordering::Relaxed);
    }

    pub fn cap() -> usize {
        resolve_cap()
    }

    pub fn on_span_open(name: &'static str) {
        if !tracing() {
            return;
        }
        with_local(|l| {
            l.frames.push([0; NUM_OPS]);
            l.push(Event {
                kind: EventKind::SpanOpen,
                t_ns: now_ns(),
                label: name,
                a: 0,
                b: 0,
            });
        });
    }

    pub fn on_span_close(name: &'static str, mem: crate::mem::MemDelta) {
        if !tracing() {
            return;
        }
        with_local(|l| {
            // No frame ⇒ the open predated tracing; skip the close so the
            // captured journal stays balanced.
            let Some(frame) = l.frames.pop() else {
                return;
            };
            let t_ns = now_ns();
            for op in Op::ALL {
                let delta = frame[op as usize];
                if delta > 0 {
                    l.push(Event {
                        kind: EventKind::OpDelta,
                        t_ns,
                        label: op.name(),
                        a: delta,
                        b: 0,
                    });
                }
            }
            for (label, delta) in [
                (crate::mem::ALLOCS_LABEL, mem.allocs),
                (crate::mem::ALLOC_BYTES_LABEL, mem.alloc_bytes),
            ] {
                if delta > 0 {
                    l.push(Event {
                        kind: EventKind::MemDelta,
                        t_ns,
                        label,
                        a: delta,
                        b: 0,
                    });
                }
            }
            l.push(Event {
                kind: EventKind::SpanClose,
                t_ns,
                label: name,
                a: 0,
                b: 0,
            });
            if l.frames.is_empty() {
                l.flush();
            }
        });
    }

    #[inline]
    pub fn on_op(op: Op, n: u64) {
        with_local(|l| {
            if let Some(frame) = l.frames.last_mut() {
                let slot = &mut frame[op as usize];
                *slot = slot.saturating_add(n);
            }
        });
    }

    pub fn record(kind: EventKind, label: &'static str, a: u64, b: u64) {
        with_local(|l| {
            l.push(Event {
                kind,
                t_ns: now_ns(),
                label,
                a,
                b,
            });
        });
    }

    pub fn take() -> Trace {
        // Flush the calling thread so a single-threaded capture is
        // complete even while its outermost span is still open elsewhere
        // in the call stack.
        with_local(Local::flush);
        let mut threads = std::mem::take(&mut *SINK.lock().unwrap_or_else(|e| e.into_inner()));
        let cap = resolve_cap();
        GEN.fetch_add(1, Ordering::Relaxed);
        threads.sort_by_key(|t| t.thread);
        Trace { threads, cap }
    }

    pub fn reset() {
        SINK.lock().unwrap_or_else(|e| e.into_inner()).clear();
        GEN.fetch_add(1, Ordering::Relaxed);
    }

    /// Interns a runtime string as a journal label. The networked paths
    /// see driver names and wire labels as runtime strings (decoded from
    /// frames), while the journal stores `&'static str`; each distinct
    /// label is therefore leaked exactly once. The set is tiny — driver
    /// names plus protocol labels — and only grows while tracing is on.
    pub fn intern(s: &str) -> &'static str {
        static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        let mut set = INTERNED.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(hit) = set.iter().find(|k| **k == s) {
            return hit;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        set.push(leaked);
        leaked
    }
}

#[cfg(not(feature = "obs"))]
mod imp {
    use super::Trace;

    #[inline(always)]
    pub fn tracing() -> bool {
        false
    }

    pub fn set_tracing(_on: bool) {}

    pub fn set_cap(_cap: usize) {}

    pub fn cap() -> usize {
        super::DEFAULT_CAP
    }

    #[inline(always)]
    pub fn record(_kind: super::EventKind, _label: &'static str, _a: u64, _b: u64) {}

    pub fn take() -> Trace {
        Trace::default()
    }

    pub fn reset() {}

    pub fn intern(_s: &str) -> &'static str {
        ""
    }
}

#[cfg(feature = "obs")]
pub(crate) use imp::{on_op, on_span_close, on_span_open};

/// Whether event recording is currently switched on.
#[inline]
pub fn tracing() -> bool {
    imp::tracing()
}

/// Switches event recording on or off (off at process start; no-op
/// without the `obs` feature).
pub fn set_tracing(on: bool) {
    imp::set_tracing(on)
}

/// Overrides the per-thread event cap (normally `SPFE_TRACE_CAP`).
pub fn set_cap(cap: usize) {
    imp::set_cap(cap)
}

/// The per-thread event cap currently in force.
pub fn cap() -> usize {
    imp::cap()
}

/// Records a wire message event (`up` = client→server). Called by the
/// transport meter; a no-op unless tracing is on.
#[inline]
pub fn wire_event(up: bool, server: usize, label: &'static str, bytes: u64) {
    if !imp::tracing() {
        return;
    }
    let kind = if up {
        EventKind::WireUp
    } else {
        EventKind::WireDown
    };
    imp::record(kind, label, bytes, server as u64);
}

/// Records a fault-injection event. Called by `FaultyChannel`; a no-op
/// unless tracing is on.
#[inline]
pub fn fault_event(action: &'static str, server: usize) {
    if !imp::tracing() {
        return;
    }
    imp::record(EventKind::Fault, action, 0, server as u64);
}

/// Records a delivery-retry event (`attempt` = 1 for the first retry).
/// Called by the transport retry loop; a no-op unless tracing is on.
#[inline]
pub fn retry_event(label: &'static str, server: usize, attempt: u64) {
    if !imp::tracing() {
        return;
    }
    imp::record(EventKind::Retry, label, attempt, server as u64);
}

/// Records a view-seal event: the leakage-audit layer fingerprinted one
/// party's view of `events` messages. A no-op unless tracing is on.
#[inline]
pub fn view_event(party_is_client: bool, server: usize, events: u64) {
    if !imp::tracing() {
        return;
    }
    let label = if party_is_client { "client" } else { "server" };
    imp::record(EventKind::ViewSeal, label, events, server as u64);
}

/// Records a networked session span opening or closing on this party.
/// `mode` is the session-mode byte from the Hello frame (0 = relay,
/// 1 = compute). Frame events recorded afterwards on the same thread
/// belong to this session until the matching close, which is how the
/// cross-process merge (`spfe-tables net-trace --merge`) attributes them.
/// A no-op unless tracing is on.
#[inline]
pub fn net_session_event(open: bool, session: u64, driver: &str, mode: u8) {
    if !imp::tracing() {
        return;
    }
    let kind = if open {
        EventKind::NetSessionOpen
    } else {
        EventKind::NetSessionClose
    };
    imp::record(kind, imp::intern(driver), session, u64::from(mode));
}

/// Records a stamped session-frame event: `send` for a frame leaving this
/// party, receive otherwise. `lamport` is this party's Lamport stamp for
/// the event (ticked on send, merged on receive, so a matched receive is
/// always strictly greater than its send). A no-op unless tracing is on.
#[inline]
pub fn net_frame_event(send: bool, label: &str, bytes: u64, half_round: u32, lamport: u32) {
    if !imp::tracing() {
        return;
    }
    let kind = if send {
        EventKind::NetSend
    } else {
        EventKind::NetRecv
    };
    let b = (u64::from(half_round) << 32) | u64::from(lamport);
    imp::record(kind, imp::intern(label), bytes, b);
}

/// Unpacks the `b` word of a [`EventKind::NetSend`]/[`EventKind::NetRecv`]
/// event into `(half_round, lamport)`.
#[must_use]
pub fn unpack_net_stamp(b: u64) -> (u32, u32) {
    ((b >> 32) as u32, b as u32)
}

/// Drains everything recorded since the last [`take`]/[`reset`] (flushing
/// the calling thread first) and starts a new measurement window.
pub fn take() -> Trace {
    imp::take()
}

/// Discards everything recorded so far and starts a new window.
pub fn reset() {
    imp::reset()
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;
    use crate::{count, span, Op};

    fn capture(f: impl FnOnce()) -> Trace {
        let _g = crate::test_guard();
        reset();
        set_cap(DEFAULT_CAP);
        set_tracing(true);
        f();
        let trace = take();
        set_tracing(false);
        trace
    }

    fn my_events(trace: &Trace) -> Vec<Event> {
        // The capture ran on this thread; other threads are empty unless
        // the closure spawned workers.
        let mut all: Vec<Event> = Vec::new();
        for t in &trace.threads {
            all.extend(t.events.iter().copied());
        }
        all
    }

    #[test]
    fn spans_emit_balanced_events_with_op_deltas() {
        let trace = capture(|| {
            let _outer = span("t-outer");
            count(Op::Modexp, 3);
            {
                let _inner = span("t-inner");
                count(Op::Modexp, 2);
                count(Op::HomAdd, 5);
            }
            count(Op::Modexp, 1);
        });
        let evs = my_events(&trace);
        let opens = evs.iter().filter(|e| e.kind == EventKind::SpanOpen).count();
        let closes = evs
            .iter()
            .filter(|e| e.kind == EventKind::SpanClose)
            .count();
        assert_eq!(opens, 2);
        assert_eq!(closes, 2);
        // Inner span self-attributes its own counts...
        let inner_deltas: Vec<_> = evs
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind == EventKind::OpDelta)
            .collect();
        assert_eq!(inner_deltas.len(), 3, "{evs:?}");
        let inner_modexp = evs
            .iter()
            .find(|e| e.kind == EventKind::OpDelta && e.label == "modexp" && e.a == 2);
        assert!(inner_modexp.is_some(), "inner span modexp delta of 2");
        // ...and the outer span keeps only its own 3 + 1.
        let outer_modexp = evs
            .iter()
            .find(|e| e.kind == EventKind::OpDelta && e.label == "modexp" && e.a == 4);
        assert!(outer_modexp.is_some(), "outer span self-delta of 4");
        let hom = evs
            .iter()
            .find(|e| e.kind == EventKind::OpDelta && e.label == "hom_add");
        assert_eq!(hom.map(|e| e.a), Some(5));
    }

    #[test]
    fn timestamps_are_monotone_per_thread() {
        let trace = capture(|| {
            for _ in 0..5 {
                let _s = span("t-mono");
                count(Op::HomAdd, 1);
            }
        });
        for t in &trace.threads {
            for w in t.events.windows(2) {
                assert!(w[0].t_ns <= w[1].t_ns, "{w:?}");
            }
        }
    }

    #[test]
    fn cap_keeps_earliest_events_and_counts_drops() {
        let _g = crate::test_guard();
        reset();
        set_cap(8);
        set_tracing(true);
        for _ in 0..50 {
            let _s = span("t-cap");
        }
        let trace = take();
        set_tracing(false);
        set_cap(DEFAULT_CAP);
        assert_eq!(trace.cap, 8);
        assert_eq!(trace.total_events(), 8, "earliest events kept");
        assert_eq!(trace.total_dropped(), 92, "2 per span × 50 − 8");
        // The kept prefix is still balanced-or-open, never close-heavy.
        let evs = my_events(&trace);
        let mut depth = 0i64;
        for e in &evs {
            match e.kind {
                EventKind::SpanOpen => depth += 1,
                EventKind::SpanClose => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "{evs:?}");
        }
    }

    #[test]
    fn wire_fault_retry_events_record_payloads() {
        let trace = capture(|| {
            let _s = span("t-wire");
            wire_event(true, 2, "q", 128);
            wire_event(false, 2, "a", 256);
            fault_event("drop", 1);
            retry_event("q", 1, 1);
        });
        let evs = my_events(&trace);
        let up = evs.iter().find(|e| e.kind == EventKind::WireUp).unwrap();
        assert_eq!((up.label, up.a, up.b), ("q", 128, 2));
        let down = evs.iter().find(|e| e.kind == EventKind::WireDown).unwrap();
        assert_eq!((down.label, down.a, down.b), ("a", 256, 2));
        let fault = evs.iter().find(|e| e.kind == EventKind::Fault).unwrap();
        assert_eq!((fault.label, fault.b), ("drop", 1));
        let retry = evs.iter().find(|e| e.kind == EventKind::Retry).unwrap();
        assert_eq!((retry.label, retry.a, retry.b), ("q", 1, 1));
    }

    #[test]
    fn net_events_record_session_and_stamp_payloads() {
        let trace = capture(|| {
            net_session_event(true, 42, &String::from("toy-driver"), 1);
            net_frame_event(true, &String::from("toy-q"), 128, 1, 7);
            net_frame_event(false, "toy-a", 256, 2, 9);
            net_session_event(false, 42, "toy-driver", 1);
        });
        let evs = my_events(&trace);
        let open = evs
            .iter()
            .find(|e| e.kind == EventKind::NetSessionOpen)
            .unwrap();
        assert_eq!((open.label, open.a, open.b), ("toy-driver", 42, 1));
        let close = evs
            .iter()
            .find(|e| e.kind == EventKind::NetSessionClose)
            .unwrap();
        // Interning is by content: the runtime String and the literal
        // resolve to the same static label.
        assert!(std::ptr::eq(open.label, close.label));
        let send = evs.iter().find(|e| e.kind == EventKind::NetSend).unwrap();
        assert_eq!((send.label, send.a), ("toy-q", 128));
        assert_eq!(unpack_net_stamp(send.b), (1, 7));
        let recv = evs.iter().find(|e| e.kind == EventKind::NetRecv).unwrap();
        assert_eq!((recv.label, recv.a), ("toy-a", 256));
        assert_eq!(unpack_net_stamp(recv.b), (2, 9));
    }

    #[test]
    fn tracing_off_records_nothing() {
        let _g = crate::test_guard();
        reset();
        assert!(!tracing());
        {
            let _s = span("t-off");
            count(Op::Modexp, 1);
            wire_event(true, 0, "q", 8);
        }
        assert_eq!(take().total_events(), 0);
    }

    #[test]
    fn worker_threads_journal_separately() {
        let trace = capture(|| {
            let _outer = span("t-main");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _w = span("t-worker");
                });
            });
        });
        assert!(trace.threads.len() >= 2, "{trace:?}");
        let worker = trace
            .threads
            .iter()
            .find(|t| t.events.iter().any(|e| e.label == "t-worker"))
            .expect("worker journal present");
        assert!(worker.events.iter().all(|e| e.label != "t-main"));
    }

    #[test]
    fn reset_discards_and_take_starts_a_new_window() {
        let _g = crate::test_guard();
        reset();
        set_tracing(true);
        {
            let _s = span("t-w1");
        }
        reset();
        {
            let _s = span("t-w2");
        }
        let trace = take();
        set_tracing(false);
        let evs = my_events(&trace);
        assert!(evs.iter().all(|e| e.label != "t-w1"), "{evs:?}");
        assert_eq!(
            evs.iter().filter(|e| e.label == "t-w2").count(),
            2,
            "{evs:?}"
        );
        assert_eq!(take().total_events(), 0, "take drained the sink");
    }
}
