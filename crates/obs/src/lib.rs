//! Workspace-wide instrumentation: spans, op counters, cost reports.
//!
//! The paper's claims are *cost* claims — communication in bits and rounds,
//! and server/client work in modular exponentiations, encryptions, OT
//! executions and PIR cells scanned (Table 1, §3–§4). `spfe-transport`
//! meters the communication side; this crate meters the computation side
//! and merges both into one machine-readable [`CostReport`].
//!
//! Three pieces:
//!
//! * **Op counters** ([`count`], [`Op`]) — process-global tallies of the
//!   crypto/math hot-path operations, implemented as sharded relaxed
//!   atomics so the worker pool of `spfe-math::par` can increment from any
//!   thread without contention. Because every probe site counts *work
//!   items* (not scheduling events), the deterministic subset of counters
//!   is identical at `SPFE_THREADS=1` and `SPFE_THREADS=N` — addition
//!   commutes, so shard totals are independent of which thread did what.
//!   Scheduler gauges (`Pool*`) are explicitly excluded from that contract
//!   via [`Op::deterministic`].
//! * **Spans** ([`span`]) — hierarchical wall-clock timers for protocol
//!   phases (`query-gen`, `server-scan`, `reconstruct`, …). Nesting is
//!   tracked per thread; aggregates are keyed by the full `/`-joined path.
//! * **Reports** ([`CostReport`]) — span timings + op counters + the
//!   communication breakdown in one struct, with Markdown and JSON
//!   renderers ([`suite_json`] emits the `spfe-cost-report/v1` schema that
//!   `spfe-tables --json` writes to `BENCH_costs.json`).
//!
//! Everything is feature-gated: with the default `obs` feature the probes
//! record; built with `--no-default-features` they compile to no-ops and
//! the recording state vanishes, while all types (and this API) remain, so
//! no downstream crate ever writes a `cfg`.
//!
//! # Examples
//!
//! ```
//! use spfe_obs as obs;
//! obs::reset();
//! {
//!     let _g = obs::span("server-scan");
//!     obs::count(obs::Op::Modexp, 3);
//! }
//! let ops = obs::ops_snapshot();
//! assert!(!obs::enabled() || ops.get(obs::Op::Modexp) == 3);
//! ```

mod counter;
pub mod json;
mod report;
mod span;

pub use counter::{count, ops_snapshot, reset_ops, Op, OpsSnapshot};
pub use report::{suite_json, CommStat, CostReport, LabelStat, OpStat, SCHEMA};
pub use span::{reset_spans, span, spans_snapshot, SpanGuard, SpanStat};

/// Whether the recording paths are compiled in (the `obs` feature).
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

/// Clears all op counters and span aggregates (start of a measurement).
pub fn reset() {
    reset_ops();
    reset_spans();
}
