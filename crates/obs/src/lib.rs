//! Workspace-wide instrumentation: spans, op counters, cost reports.
//!
//! The paper's claims are *cost* claims — communication in bits and rounds,
//! and server/client work in modular exponentiations, encryptions, OT
//! executions and PIR cells scanned (Table 1, §3–§4). `spfe-transport`
//! meters the communication side; this crate meters the computation side
//! and merges both into one machine-readable [`CostReport`].
//!
//! Three pieces:
//!
//! * **Op counters** ([`count`], [`Op`]) — process-global tallies of the
//!   crypto/math hot-path operations, implemented as sharded relaxed
//!   atomics so the worker pool of `spfe-math::par` can increment from any
//!   thread without contention. Because every probe site counts *work
//!   items* (not scheduling events), the deterministic subset of counters
//!   is identical at `SPFE_THREADS=1` and `SPFE_THREADS=N` — addition
//!   commutes, so shard totals are independent of which thread did what.
//!   Scheduler gauges (`Pool*`) are explicitly excluded from that contract
//!   via [`Op::deterministic`].
//! * **Spans** ([`span`]) — hierarchical wall-clock timers for protocol
//!   phases (`query-gen`, `server-scan`, `reconstruct`, …). Nesting is
//!   tracked per thread; aggregates are keyed by the full `/`-joined path.
//! * **Reports** ([`CostReport`]) — span timings + op counters + the
//!   communication breakdown + heap counters in one struct, with Markdown
//!   and JSON renderers ([`suite_json`] emits the `spfe-cost-report/v3`
//!   schema that `spfe-tables --json` writes to `BENCH_costs.json`;
//!   [`parse_suite`] reads v3 and the older v2/v1 back).
//! * **Heap profiling** ([`mem`]) — with the opt-in `obs-alloc` feature a
//!   counting `#[global_allocator]` attributes allocation counts/bytes to
//!   the open span and tracks the live/peak heap gauge; without it the
//!   probes compile out and every heap field reads 0.
//!
//! Beyond the aggregates, the [`trace`] module keeps an opt-in *event
//! journal*: with [`trace::set_tracing`] on, every span open/close, op
//! delta, wire message, fault injection and retry becomes a timestamped
//! event, exportable via [`export`] as Perfetto `trace_event` JSON or a
//! flamegraph folded-stack file. Spans additionally feed a log-bucketed
//! latency [`histo::Histo`] per path, surfaced as `p50_ns`/`p95_ns`/
//! `p99_ns` on [`SpanStat`].
//!
//! Everything is feature-gated: with the default `obs` feature the probes
//! record; built with `--no-default-features` they compile to no-ops and
//! the recording state vanishes, while all types (and this API) remain, so
//! no downstream crate ever writes a `cfg`.
//!
//! # Examples
//!
//! ```
//! use spfe_obs as obs;
//! obs::reset();
//! {
//!     let _g = obs::span("server-scan");
//!     obs::count(obs::Op::Modexp, 3);
//! }
//! let ops = obs::ops_snapshot();
//! assert!(!obs::enabled() || ops.get(obs::Op::Modexp) == 3);
//! ```

pub mod audit;
mod counter;
pub mod export;
pub mod histo;
pub mod json;
pub mod mem;
pub mod metrics;
mod report;
mod span;
pub mod suite;
pub mod trace;

pub use counter::{count, ops_snapshot, reset_ops, Op, OpsSnapshot};
pub use mem::{alloc_enabled, reset_mem, MemDelta, MemStat};
pub use report::{
    suite_json, CommStat, CostReport, LabelStat, OpStat, SCHEMA, SCHEMA_V1, SCHEMA_V2,
};
pub use span::{reset_spans, span, spans_snapshot, SpanGuard, SpanStat};
pub use suite::{parse_suite, Suite};
pub use trace::{
    fault_event, net_frame_event, net_session_event, retry_event, unpack_net_stamp, view_event,
    wire_event,
};

/// Whether the recording paths are compiled in (the `obs` feature).
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

/// Clears all op counters, span aggregates and windowed heap tallies
/// (start of a measurement). The trace journal has its own window control
/// ([`trace::reset`], [`trace::take`]) so one timeline can cover several
/// measured runs.
pub fn reset() {
    reset_ops();
    reset_spans();
    reset_mem();
}

/// Tests across this crate's modules share the process-global span
/// registry and trace journal; they serialize on one lock.
#[cfg(all(test, feature = "obs"))]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::{Mutex, OnceLock};
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}
