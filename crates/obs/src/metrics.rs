//! The operational metrics registry behind the networked SPFE service
//! (DESIGN.md §16).
//!
//! The in-process observability stack (spans, op counters, cost reports)
//! measures *one* protocol execution under a harness; this module is the
//! complement for a *running server*: process-lifetime counters, gauges,
//! and per-driver latency histograms that an operator can scrape off the
//! live listener. Three pieces:
//!
//! * **[`Metrics`]** — the lock-light registry. Session and byte counters
//!   are relaxed atomics (the per-frame hot path takes no lock); the
//!   per-`(driver, mode)` aggregates — wall-clock [`Histo`]s and byte /
//!   half-round totals — are folded under a mutex exactly once per
//!   session close, which is cold by construction.
//! * **[`MetricsSnapshot`]** — a point-in-time copy, rendered as the
//!   `spfe-metrics/v1` JSON document ([`MetricsSnapshot::to_json`], read
//!   back by [`parse_snapshot`]) or as Prometheus text exposition
//!   ([`MetricsSnapshot::prometheus`]) for a scrape pipeline.
//! * **[`SessionLogRecord`]** — one structured JSONL line per session on
//!   stderr, behind the `SPFE_LOG` environment switch ([`log_enabled`]);
//!   the default is quiet.
//!
//! Failures are classified into the stable [`FailureKind`] taxonomy
//! instead of one opaque `failed` counter, so dashboards (and
//! `tests/net_timeout.rs`) can tell a handshake timeout from a codec
//! rejection. Unlike the measurement probes this module is *not* gated
//! behind the `obs` feature: a server built `--no-default-features`
//! still answers scrapes — operational telemetry is part of the service,
//! not of the benchmark harness.

use crate::histo::Histo;
use crate::json::{self, escape, Json};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Schema tag of the snapshot document.
pub const METRICS_SCHEMA: &str = "spfe-metrics/v1";

/// The stable failure taxonomy for networked sessions.
///
/// Names are wire-stable: they appear in the JSON snapshot, the
/// Prometheus `kind` label, and session log lines, and `serve-report`
/// diffs them across snapshots — renaming one is a schema change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The peer went quiet before the session was established.
    HandshakeTimeout = 0,
    /// A read or write deadline expired mid-session.
    TransferTimeout = 1,
    /// A frame failed validation (bad magic, version, bounds, UTF-8).
    CodecReject = 2,
    /// A well-formed frame violated the session protocol (wrong kind,
    /// unknown mode or driver, misdirected or rejected message).
    ProtocolError = 3,
    /// The connection was reset, closed mid-frame, or otherwise failed
    /// at the I/O layer.
    Io = 4,
    /// A completed run returned the wrong digest (client-side check).
    DigestMismatch = 5,
    /// The session thread panicked (caught at the session boundary).
    Panic = 6,
}

impl FailureKind {
    /// Every kind, in stable rendering order.
    pub const ALL: [FailureKind; 7] = [
        FailureKind::HandshakeTimeout,
        FailureKind::TransferTimeout,
        FailureKind::CodecReject,
        FailureKind::ProtocolError,
        FailureKind::Io,
        FailureKind::DigestMismatch,
        FailureKind::Panic,
    ];

    /// The wire-stable name.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::HandshakeTimeout => "handshake-timeout",
            FailureKind::TransferTimeout => "transfer-timeout",
            FailureKind::CodecReject => "codec-reject",
            FailureKind::ProtocolError => "protocol-error",
            FailureKind::Io => "io",
            FailureKind::DigestMismatch => "driver-digest-mismatch",
            FailureKind::Panic => "panic",
        }
    }

    /// Resolves a wire name back to the kind.
    pub fn from_name(name: &str) -> Option<FailureKind> {
        FailureKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// What one closed session transferred, as the registry folds it.
///
/// The serving side fills this from a `FlowMeter` over the session's
/// frames; the client side fills it from its metered transcript. Either
/// way the fields agree — that equivalence is what `tests/net_metrics.rs`
/// pins down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionUsage {
    /// Payload bytes, client → server.
    pub bytes_in: u64,
    /// Payload bytes, server → client.
    pub bytes_out: u64,
    /// Protocol messages, client → server.
    pub frames_in: u64,
    /// Protocol messages, server → client.
    pub frames_out: u64,
    /// Half-rounds of the session (transcript convention).
    pub half_rounds: u64,
    /// Wall-clock duration of the session in microseconds.
    pub wall_micros: u64,
}

/// Per-`(driver, mode)` aggregate, folded once per session close.
#[derive(Debug)]
struct DriverStats {
    driver: String,
    mode: String,
    sessions: u64,
    completed: u64,
    failed: u64,
    bytes_in: u64,
    bytes_out: u64,
    half_rounds: u64,
    wall_sum_micros: u64,
    wall: Histo,
}

/// The registry: process-lifetime operational counters for a server (or
/// client) handling networked SPFE sessions.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    opened: AtomicU64,
    completed: AtomicU64,
    active: AtomicU64,
    stats_probes: AtomicU64,
    failures: [AtomicU64; FailureKind::ALL.len()],
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    drivers: Mutex<Vec<DriverStats>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

fn lock_drivers(m: &Mutex<Vec<DriverStats>>) -> MutexGuard<'_, Vec<DriverStats>> {
    // A panicking session thread can only poison this lock between two
    // consistent fold states; the counters inside stay meaningful.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Metrics {
    /// A fresh registry; uptime counts from here.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            opened: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            active: AtomicU64::new(0),
            stats_probes: AtomicU64::new(0),
            failures: Default::default(),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            drivers: Mutex::new(Vec::new()),
        }
    }

    /// A session began (first frame activity on a connection). Pairs
    /// with exactly one [`Metrics::session_closed`].
    pub fn session_opened(&self) {
        self.opened.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_add(1, Ordering::Relaxed);
    }

    /// A metrics scrape was answered (tracked apart from sessions so
    /// monitoring does not inflate the session counters it reports).
    pub fn stats_probe(&self) {
        self.stats_probes.fetch_add(1, Ordering::Relaxed);
    }

    /// One protocol message moved; the per-frame hot path (no lock).
    pub fn transfer(&self, client_to_server: bool, bytes: u64) {
        if client_to_server {
            self.bytes_in.fetch_add(bytes, Ordering::Relaxed);
            self.frames_in.fetch_add(1, Ordering::Relaxed);
        } else {
            self.bytes_out.fetch_add(bytes, Ordering::Relaxed);
            self.frames_out.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A session ended; folds its usage into the per-driver aggregates
    /// and settles the outcome counters. `outcome` is `Ok(())` for a
    /// clean close, or the failure classification.
    pub fn session_closed(
        &self,
        driver: &str,
        mode: &str,
        outcome: Result<(), FailureKind>,
        usage: SessionUsage,
    ) {
        self.active.fetch_sub(1, Ordering::Relaxed);
        match outcome {
            Ok(()) => {
                self.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(kind) => {
                self.failures[kind as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut drivers = lock_drivers(&self.drivers);
        let entry = match drivers
            .iter_mut()
            .find(|d| d.driver == driver && d.mode == mode)
        {
            Some(d) => d,
            None => {
                drivers.push(DriverStats {
                    driver: driver.to_owned(),
                    mode: mode.to_owned(),
                    sessions: 0,
                    completed: 0,
                    failed: 0,
                    bytes_in: 0,
                    bytes_out: 0,
                    half_rounds: 0,
                    wall_sum_micros: 0,
                    wall: Histo::new(),
                });
                drivers.last_mut().expect("just pushed")
            }
        };
        entry.sessions += 1;
        match outcome {
            Ok(()) => entry.completed += 1,
            Err(_) => entry.failed += 1,
        }
        entry.bytes_in += usage.bytes_in;
        entry.bytes_out += usage.bytes_out;
        entry.half_rounds += usage.half_rounds;
        entry.wall_sum_micros += usage.wall_micros;
        entry.wall.record(usage.wall_micros);
    }

    /// Sessions opened so far.
    pub fn sessions_opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Sessions that closed cleanly.
    pub fn sessions_completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Sessions torn down on any failure (sum over the taxonomy).
    pub fn sessions_failed(&self) -> u64 {
        self.failures
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Failures of one specific kind.
    pub fn failures(&self, kind: FailureKind) -> u64 {
        self.failures[kind as usize].load(Ordering::Relaxed)
    }

    /// Sessions currently in flight.
    pub fn sessions_active(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// Metrics scrapes answered.
    pub fn stats_probes(&self) -> u64 {
        self.stats_probes.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter and aggregate.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let drivers = lock_drivers(&self.drivers)
            .iter()
            .map(|d| DriverSnapshot {
                driver: d.driver.clone(),
                mode: d.mode.clone(),
                sessions: d.sessions,
                completed: d.completed,
                failed: d.failed,
                bytes_in: d.bytes_in,
                bytes_out: d.bytes_out,
                half_rounds: d.half_rounds,
                wall_count: d.wall.count(),
                wall_sum_micros: d.wall_sum_micros,
                p50_micros: d.wall.p50(),
                p95_micros: d.wall.p95(),
                p99_micros: d.wall.p99(),
                buckets: d.wall.nonzero_buckets().collect(),
            })
            .collect();
        MetricsSnapshot {
            uptime_micros: self.started.elapsed().as_micros() as u64,
            sessions_opened: self.sessions_opened(),
            sessions_completed: self.sessions_completed(),
            sessions_active: self.sessions_active(),
            stats_probes: self.stats_probes(),
            failures: FailureKind::ALL
                .iter()
                .map(|&k| (k, self.failures(k)))
                .collect(),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            drivers,
        }
    }
}

/// One driver × mode row of a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverSnapshot {
    /// Driver (experiment) name from the Hello frame.
    pub driver: String,
    /// `relay` or `compute`.
    pub mode: String,
    /// Sessions closed under this key (clean or failed).
    pub sessions: u64,
    /// Clean closes.
    pub completed: u64,
    /// Failed closes.
    pub failed: u64,
    /// Payload bytes, client → server, summed over sessions.
    pub bytes_in: u64,
    /// Payload bytes, server → client, summed over sessions.
    pub bytes_out: u64,
    /// Half-rounds summed over sessions.
    pub half_rounds: u64,
    /// Wall-clock samples in the histogram.
    pub wall_count: u64,
    /// Exact sum of session wall times in microseconds.
    pub wall_sum_micros: u64,
    /// Median session wall time (log2-bucket upper bound).
    pub p50_micros: u64,
    /// 95th-percentile session wall time.
    pub p95_micros: u64,
    /// 99th-percentile session wall time.
    pub p99_micros: u64,
    /// `(bucket upper bound, count)` for every nonzero bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

/// A point-in-time copy of a [`Metrics`] registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Microseconds since the registry was created.
    pub uptime_micros: u64,
    /// Sessions opened.
    pub sessions_opened: u64,
    /// Sessions closed cleanly.
    pub sessions_completed: u64,
    /// Sessions currently in flight.
    pub sessions_active: u64,
    /// Metrics scrapes answered.
    pub stats_probes: u64,
    /// Failure counters, one per [`FailureKind`], in `ALL` order.
    pub failures: Vec<(FailureKind, u64)>,
    /// Payload bytes, client → server, process lifetime.
    pub bytes_in: u64,
    /// Payload bytes, server → client, process lifetime.
    pub bytes_out: u64,
    /// Protocol messages, client → server.
    pub frames_in: u64,
    /// Protocol messages, server → client.
    pub frames_out: u64,
    /// Per-driver aggregates in first-session order.
    pub drivers: Vec<DriverSnapshot>,
}

impl MetricsSnapshot {
    /// Failed sessions (sum over the taxonomy).
    pub fn sessions_failed(&self) -> u64 {
        self.failures.iter().map(|&(_, n)| n).sum()
    }

    /// The counter for one failure kind.
    pub fn failure(&self, kind: FailureKind) -> u64 {
        self.failures
            .iter()
            .find(|&&(k, _)| k == kind)
            .map_or(0, |&(_, n)| n)
    }

    /// Total payload bytes in both directions.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_in + self.bytes_out
    }

    /// The per-driver row for `(driver, mode)`, if any session ran it.
    pub fn driver(&self, driver: &str, mode: &str) -> Option<&DriverSnapshot> {
        self.drivers
            .iter()
            .find(|d| d.driver == driver && d.mode == mode)
    }

    /// Renders the `spfe-metrics/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{METRICS_SCHEMA}\",\n"));
        out.push_str(&format!("  \"uptime_micros\": {},\n", self.uptime_micros));
        out.push_str(&format!(
            "  \"sessions\": {{\"opened\": {}, \"completed\": {}, \"failed\": {}, \
             \"active\": {}, \"stats_probes\": {}}},\n",
            self.sessions_opened,
            self.sessions_completed,
            self.sessions_failed(),
            self.sessions_active,
            self.stats_probes
        ));
        let kinds: Vec<String> = self
            .failures
            .iter()
            .map(|(k, n)| format!("\"{}\": {n}", k.name()))
            .collect();
        out.push_str(&format!("  \"failures\": {{{}}},\n", kinds.join(", ")));
        out.push_str(&format!(
            "  \"bytes\": {{\"in\": {}, \"out\": {}}},\n",
            self.bytes_in, self.bytes_out
        ));
        out.push_str(&format!(
            "  \"frames\": {{\"in\": {}, \"out\": {}}},\n",
            self.frames_in, self.frames_out
        ));
        out.push_str("  \"drivers\": [");
        for (i, d) in self.drivers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = d
                .buckets
                .iter()
                .map(|&(le, n)| format!("[{le}, {n}]"))
                .collect();
            out.push_str(&format!(
                "\n    {{\"driver\": \"{}\", \"mode\": \"{}\", \"sessions\": {}, \
                 \"completed\": {}, \"failed\": {}, \"bytes_in\": {}, \"bytes_out\": {}, \
                 \"half_rounds\": {}, \"wall_micros\": {{\"count\": {}, \"sum\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [{}]}}}}",
                escape(&d.driver),
                escape(&d.mode),
                d.sessions,
                d.completed,
                d.failed,
                d.bytes_in,
                d.bytes_out,
                d.half_rounds,
                d.wall_count,
                d.wall_sum_micros,
                d.p50_micros,
                d.p95_micros,
                d.p99_micros,
                buckets.join(", ")
            ));
        }
        if !self.drivers.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders Prometheus text exposition (format 0.0.4): counters,
    /// gauges, and one cumulative histogram per driver × mode.
    pub fn prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let gauge = |out: &mut String, name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        };
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        out.push_str(&format!(
            "# HELP spfe_uptime_seconds Seconds since the metrics registry was created.\n\
             # TYPE spfe_uptime_seconds gauge\nspfe_uptime_seconds {}\n",
            self.uptime_micros as f64 / 1e6
        ));
        counter(
            &mut out,
            "spfe_sessions_opened_total",
            "Sessions opened.",
            self.sessions_opened,
        );
        counter(
            &mut out,
            "spfe_sessions_completed_total",
            "Sessions closed cleanly.",
            self.sessions_completed,
        );
        out.push_str(
            "# HELP spfe_sessions_failed_total Sessions torn down, by failure kind.\n\
             # TYPE spfe_sessions_failed_total counter\n",
        );
        for &(kind, n) in &self.failures {
            out.push_str(&format!(
                "spfe_sessions_failed_total{{kind=\"{}\"}} {n}\n",
                prom_escape(kind.name())
            ));
        }
        gauge(
            &mut out,
            "spfe_sessions_active",
            "Sessions currently in flight.",
            self.sessions_active,
        );
        counter(
            &mut out,
            "spfe_stats_probes_total",
            "Metrics scrapes answered.",
            self.stats_probes,
        );
        out.push_str(
            "# HELP spfe_bytes_total Protocol payload bytes, by logical direction.\n\
             # TYPE spfe_bytes_total counter\n",
        );
        out.push_str(&format!(
            "spfe_bytes_total{{direction=\"in\"}} {}\n",
            self.bytes_in
        ));
        out.push_str(&format!(
            "spfe_bytes_total{{direction=\"out\"}} {}\n",
            self.bytes_out
        ));
        out.push_str(
            "# HELP spfe_frames_total Protocol messages, by logical direction.\n\
             # TYPE spfe_frames_total counter\n",
        );
        out.push_str(&format!(
            "spfe_frames_total{{direction=\"in\"}} {}\n",
            self.frames_in
        ));
        out.push_str(&format!(
            "spfe_frames_total{{direction=\"out\"}} {}\n",
            self.frames_out
        ));
        if !self.drivers.is_empty() {
            out.push_str(
                "# HELP spfe_driver_sessions_total Sessions closed, by driver and mode.\n\
                 # TYPE spfe_driver_sessions_total counter\n",
            );
            for d in &self.drivers {
                out.push_str(&format!(
                    "spfe_driver_sessions_total{{{}}} {}\n",
                    driver_labels(d),
                    d.sessions
                ));
            }
            out.push_str(
                "# HELP spfe_driver_failed_total Failed sessions, by driver and mode.\n\
                 # TYPE spfe_driver_failed_total counter\n",
            );
            for d in &self.drivers {
                out.push_str(&format!(
                    "spfe_driver_failed_total{{{}}} {}\n",
                    driver_labels(d),
                    d.failed
                ));
            }
            out.push_str(
                "# HELP spfe_driver_bytes_total Payload bytes, by driver, mode and direction.\n\
                 # TYPE spfe_driver_bytes_total counter\n",
            );
            for d in &self.drivers {
                out.push_str(&format!(
                    "spfe_driver_bytes_total{{{},direction=\"in\"}} {}\n",
                    driver_labels(d),
                    d.bytes_in
                ));
                out.push_str(&format!(
                    "spfe_driver_bytes_total{{{},direction=\"out\"}} {}\n",
                    driver_labels(d),
                    d.bytes_out
                ));
            }
            out.push_str(
                "# HELP spfe_driver_half_rounds_total Half-rounds, by driver and mode.\n\
                 # TYPE spfe_driver_half_rounds_total counter\n",
            );
            for d in &self.drivers {
                out.push_str(&format!(
                    "spfe_driver_half_rounds_total{{{}}} {}\n",
                    driver_labels(d),
                    d.half_rounds
                ));
            }
            out.push_str(
                "# HELP spfe_session_wall_micros Session wall time in microseconds.\n\
                 # TYPE spfe_session_wall_micros histogram\n",
            );
            for d in &self.drivers {
                let labels = driver_labels(d);
                // Emit the full stable bound ladder, occupied or not, so a
                // scrape pipeline sees the same bucket schema on every
                // scrape (the JSON snapshot stays nonzero-only).
                let mut cumulative = 0u64;
                let mut occupied = d.buckets.iter().peekable();
                for le in crate::histo::bucket_bounds() {
                    while let Some(&&(bound, n)) = occupied.peek() {
                        if bound > le {
                            break;
                        }
                        cumulative = cumulative.saturating_add(n);
                        occupied.next();
                    }
                    out.push_str(&format!(
                        "spfe_session_wall_micros_bucket{{{labels},le=\"{le}\"}} {cumulative}\n"
                    ));
                }
                out.push_str(&format!(
                    "spfe_session_wall_micros_bucket{{{labels},le=\"+Inf\"}} {}\n",
                    d.wall_count
                ));
                out.push_str(&format!(
                    "spfe_session_wall_micros_sum{{{labels}}} {}\n",
                    d.wall_sum_micros
                ));
                out.push_str(&format!(
                    "spfe_session_wall_micros_count{{{labels}}} {}\n",
                    d.wall_count
                ));
            }
        }
        out
    }
}

fn driver_labels(d: &DriverSnapshot) -> String {
    format!(
        "driver=\"{}\",mode=\"{}\"",
        prom_escape(&d.driver),
        prom_escape(&d.mode)
    )
}

/// Escapes a Prometheus label value: backslash, double quote, newline.
pub fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn get_u64(doc: &Json, ctx: &str, path: &[&str]) -> Result<u64, String> {
    let mut node = doc;
    for key in path {
        node = node
            .get(key)
            .ok_or_else(|| format!("{ctx}: missing `{}`", path.join(".")))?;
    }
    node.as_u64()
        .ok_or_else(|| format!("{ctx}: `{}` is not a u64", path.join(".")))
}

/// Parses a `spfe-metrics/v1` document back into a snapshot.
///
/// # Errors
///
/// A human-readable message on malformed JSON, a wrong `schema` tag, or
/// a missing/ill-typed field.
pub fn parse_snapshot(src: &str) -> Result<MetricsSnapshot, String> {
    let doc = json::parse(src)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema` field")?;
    if schema != METRICS_SCHEMA {
        return Err(format!("unsupported schema {schema:?}"));
    }
    let ctx = "metrics";
    let failures_obj = doc.get("failures").ok_or("missing `failures`")?;
    let mut failures = Vec::with_capacity(FailureKind::ALL.len());
    for kind in FailureKind::ALL {
        failures.push((kind, get_u64(failures_obj, ctx, &[kind.name()])?));
    }
    let mut drivers = Vec::new();
    for (i, entry) in doc
        .get("drivers")
        .and_then(Json::as_arr)
        .ok_or("missing `drivers` array")?
        .iter()
        .enumerate()
    {
        let ctx = format!("drivers[{i}]");
        let text = |key: &str| {
            entry
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("{ctx}: missing `{key}`"))
        };
        let mut buckets = Vec::new();
        for pair in entry
            .get("wall_micros")
            .and_then(|w| w.get("buckets"))
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{ctx}: missing `wall_micros.buckets`"))?
        {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("{ctx}: bucket is not a [le, count] pair"))?;
            buckets.push((
                pair[0]
                    .as_u64()
                    .ok_or_else(|| format!("{ctx}: bucket bound is not a u64"))?,
                pair[1]
                    .as_u64()
                    .ok_or_else(|| format!("{ctx}: bucket count is not a u64"))?,
            ));
        }
        drivers.push(DriverSnapshot {
            driver: text("driver")?,
            mode: text("mode")?,
            sessions: get_u64(entry, &ctx, &["sessions"])?,
            completed: get_u64(entry, &ctx, &["completed"])?,
            failed: get_u64(entry, &ctx, &["failed"])?,
            bytes_in: get_u64(entry, &ctx, &["bytes_in"])?,
            bytes_out: get_u64(entry, &ctx, &["bytes_out"])?,
            half_rounds: get_u64(entry, &ctx, &["half_rounds"])?,
            wall_count: get_u64(entry, &ctx, &["wall_micros", "count"])?,
            wall_sum_micros: get_u64(entry, &ctx, &["wall_micros", "sum"])?,
            p50_micros: get_u64(entry, &ctx, &["wall_micros", "p50"])?,
            p95_micros: get_u64(entry, &ctx, &["wall_micros", "p95"])?,
            p99_micros: get_u64(entry, &ctx, &["wall_micros", "p99"])?,
            buckets,
        });
    }
    Ok(MetricsSnapshot {
        uptime_micros: get_u64(&doc, ctx, &["uptime_micros"])?,
        sessions_opened: get_u64(&doc, ctx, &["sessions", "opened"])?,
        sessions_completed: get_u64(&doc, ctx, &["sessions", "completed"])?,
        sessions_active: get_u64(&doc, ctx, &["sessions", "active"])?,
        stats_probes: get_u64(&doc, ctx, &["sessions", "stats_probes"])?,
        failures,
        bytes_in: get_u64(&doc, ctx, &["bytes", "in"])?,
        bytes_out: get_u64(&doc, ctx, &["bytes", "out"])?,
        frames_in: get_u64(&doc, ctx, &["frames", "in"])?,
        frames_out: get_u64(&doc, ctx, &["frames", "out"])?,
        drivers,
    })
}

/// Whether structured session logs are enabled: `SPFE_LOG` set to
/// anything other than empty, `0`, or `off`. Cached on first read.
pub fn log_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("SPFE_LOG")
            .map(|v| !v.is_empty() && v != "0" && v != "off")
            .unwrap_or(false)
    })
}

/// The next per-process session-log sequence number (starting at 1).
///
/// Wall clocks can repeat or step backwards between two log lines; the
/// sequence number is what gives a JSONL stream a total order a log
/// collector can sort and gap-check on. Monotonic per process, shared
/// across threads.
pub fn next_log_seq() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// One structured session log line (JSONL on stderr, `SPFE_LOG`-gated).
#[derive(Debug, Clone)]
pub struct SessionLogRecord<'a> {
    /// Per-process monotonic sequence number ([`next_log_seq`]).
    pub seq: u64,
    /// Unix epoch microseconds when the session closed.
    pub ts_micros: u64,
    /// Session identifier from the Hello frame.
    pub session: u64,
    /// Peer address (`host:port`) as the server saw it.
    pub peer: &'a str,
    /// Driver / experiment id.
    pub driver: &'a str,
    /// `relay`, `compute`, or `client`.
    pub mode: &'a str,
    /// `ok` or a [`FailureKind`] name.
    pub outcome: &'a str,
    /// Wall-clock duration of the session in microseconds.
    pub wall_micros: u64,
    /// Payload bytes, client → server.
    pub bytes_in: u64,
    /// Payload bytes, server → client.
    pub bytes_out: u64,
    /// Half-rounds of the session.
    pub half_rounds: u64,
}

impl SessionLogRecord<'_> {
    /// Renders the record as one JSON object (no trailing newline).
    pub fn render(&self) -> String {
        format!(
            "{{\"event\": \"session\", \"seq\": {}, \"ts_micros\": {}, \"session\": {}, \
             \"peer\": \"{}\", \"driver\": \"{}\", \"mode\": \"{}\", \
             \"outcome\": \"{}\", \"wall_micros\": {}, \"bytes_in\": {}, \
             \"bytes_out\": {}, \"half_rounds\": {}}}",
            self.seq,
            self.ts_micros,
            self.session,
            escape(self.peer),
            escape(self.driver),
            escape(self.mode),
            escape(self.outcome),
            self.wall_micros,
            self.bytes_in,
            self.bytes_out,
            self.half_rounds
        )
    }

    /// Writes the record to stderr if `SPFE_LOG` enables logging.
    pub fn emit(&self) {
        if log_enabled() {
            eprintln!("{}", self.render());
        }
    }
}

/// Unix epoch time in microseconds (for [`SessionLogRecord::ts_micros`]).
pub fn epoch_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(bytes_in: u64, bytes_out: u64, half_rounds: u64, wall: u64) -> SessionUsage {
        SessionUsage {
            bytes_in,
            bytes_out,
            frames_in: 1,
            frames_out: 1,
            half_rounds,
            wall_micros: wall,
        }
    }

    fn sample_registry() -> Metrics {
        let m = Metrics::new();
        for _ in 0..3 {
            m.session_opened();
        }
        m.transfer(true, 100);
        m.transfer(false, 40);
        m.transfer(true, 7);
        m.session_closed("hom_pir", "compute", Ok(()), usage(100, 40, 2, 900));
        m.session_closed("hom_pir", "compute", Ok(()), usage(7, 0, 1, 80_000));
        m.session_closed(
            "spir",
            "relay",
            Err(FailureKind::TransferTimeout),
            usage(0, 0, 0, 50),
        );
        m.stats_probe();
        m
    }

    #[test]
    fn registry_counts_sessions_failures_and_bytes() {
        let m = sample_registry();
        assert_eq!(m.sessions_opened(), 3);
        assert_eq!(m.sessions_completed(), 2);
        assert_eq!(m.sessions_failed(), 1);
        assert_eq!(m.failures(FailureKind::TransferTimeout), 1);
        assert_eq!(m.failures(FailureKind::CodecReject), 0);
        assert_eq!(m.sessions_active(), 0);
        assert_eq!(m.stats_probes(), 1);
        let snap = m.snapshot();
        assert_eq!((snap.bytes_in, snap.bytes_out), (107, 40));
        assert_eq!((snap.frames_in, snap.frames_out), (2, 1));
        assert_eq!(snap.sessions_failed(), 1);
        assert_eq!(snap.failure(FailureKind::TransferTimeout), 1);
        let hp = snap.driver("hom_pir", "compute").expect("hom_pir row");
        assert_eq!(hp.sessions, 2);
        assert_eq!(hp.completed, 2);
        assert_eq!((hp.bytes_in, hp.bytes_out, hp.half_rounds), (107, 40, 3));
        assert_eq!(hp.wall_sum_micros, 80_900);
        assert!(hp.p50_micros >= 900 && hp.p99_micros >= 80_000);
        assert_eq!(snap.driver("spir", "relay").unwrap().failed, 1);
        assert!(snap.driver("spir", "compute").is_none());
    }

    #[test]
    fn opened_equals_completed_plus_failed_plus_active() {
        let m = sample_registry();
        m.session_opened(); // one still in flight
        let snap = m.snapshot();
        assert_eq!(
            snap.sessions_opened,
            snap.sessions_completed + snap.sessions_failed() + snap.sessions_active
        );
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snap = sample_registry().snapshot();
        let doc = snap.to_json();
        let parsed = parse_snapshot(&doc).expect("own rendering parses");
        assert_eq!(parsed, snap);
        // And the document is plain valid JSON for foreign consumers.
        assert!(json::parse(&doc).is_ok());
    }

    #[test]
    fn parse_rejects_foreign_and_broken_documents() {
        assert!(parse_snapshot("{}").is_err());
        assert!(parse_snapshot("{\"schema\": \"spfe-cost-report/v3\"}").is_err());
        let mut doc = sample_registry().snapshot().to_json();
        doc = doc.replace("\"opened\"", "\"reopened\"");
        assert!(parse_snapshot(&doc).is_err());
    }

    #[test]
    fn empty_registry_snapshot_is_valid() {
        let snap = Metrics::new().snapshot();
        assert_eq!(parse_snapshot(&snap.to_json()).expect("parses"), snap);
        let prom = snap.prometheus();
        assert!(prom.contains("spfe_sessions_opened_total 0"));
        assert!(!prom.contains("spfe_driver_sessions_total{"));
    }

    #[test]
    fn failure_names_roundtrip_and_stay_stable() {
        for kind in FailureKind::ALL {
            assert_eq!(FailureKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(FailureKind::from_name("nope"), None);
        // The taxonomy is wire-stable: renames are schema changes.
        let names: Vec<&str> = FailureKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "handshake-timeout",
                "transfer-timeout",
                "codec-reject",
                "protocol-error",
                "io",
                "driver-digest-mismatch",
                "panic"
            ]
        );
    }

    #[test]
    fn prometheus_exposition_is_wellformed() {
        let snap = sample_registry().snapshot();
        let prom = snap.prometheus();
        assert!(prom.contains("spfe_sessions_opened_total 3"));
        assert!(prom.contains("spfe_sessions_failed_total{kind=\"transfer-timeout\"} 1"));
        assert!(prom.contains("spfe_bytes_total{direction=\"in\"} 107"));
        assert!(prom.contains("spfe_driver_sessions_total{driver=\"hom_pir\",mode=\"compute\"} 2"));
        // Histogram invariants: buckets cumulative, +Inf equals _count.
        let inf: Vec<&str> = prom
            .lines()
            .filter(|l| l.contains("le=\"+Inf\"") && l.contains("driver=\"hom_pir\""))
            .collect();
        assert_eq!(inf.len(), 1);
        assert!(inf[0].ends_with(" 2"));
        assert!(prom
            .contains("spfe_session_wall_micros_sum{driver=\"hom_pir\",mode=\"compute\"} 80900"));
        // Every line is either a comment or `name{labels} value`.
        for line in prom.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(value.parse::<f64>().is_ok(), "value parses: {line}");
            let name = name_part.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "metric name is sane: {line}"
            );
        }
    }

    #[test]
    fn prometheus_histogram_emits_the_full_bucket_ladder() {
        let snap = sample_registry().snapshot();
        let prom = snap.prometheus();
        // One cumulative series per stable bound, occupied or not, plus
        // +Inf — the exposition schema does not depend on the samples.
        for d in &snap.drivers {
            let labels = format!("driver=\"{}\",mode=\"{}\"", d.driver, d.mode);
            let buckets: Vec<&str> = prom
                .lines()
                .filter(|l| l.starts_with("spfe_session_wall_micros_bucket") && l.contains(&labels))
                .collect();
            assert_eq!(buckets.len(), crate::histo::NUM_BUCKETS + 1, "{labels}");
            // Empty low buckets are present with a cumulative count of 0.
            assert!(buckets[0].contains("le=\"0\"") && buckets[0].ends_with(" 0"));
            // Cumulative counts are monotone and end at the sample count.
            let counts: Vec<u64> = buckets
                .iter()
                .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
                .collect();
            assert!(counts.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(*counts.last().unwrap(), d.wall_count);
            assert!(buckets.last().unwrap().contains("le=\"+Inf\""));
        }
    }

    #[test]
    fn prometheus_label_escaping() {
        assert_eq!(prom_escape("plain"), "plain");
        assert_eq!(prom_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let m = Metrics::new();
        m.session_opened();
        m.session_closed("we\"ird\\name", "relay", Ok(()), usage(1, 1, 1, 1));
        let prom = m.snapshot().prometheus();
        assert!(prom.contains("driver=\"we\\\"ird\\\\name\""));
    }

    #[test]
    fn histogram_folding_matches_at_one_and_four_threads() {
        // The per-driver latency fold must be schedule-invariant: the same
        // multiset of session closes folded from 1 thread and from 4
        // concurrent threads yields identical quantiles and totals.
        let samples: Vec<u64> = (0..400u64).map(|i| (i * i + 1) % 100_000).collect();
        let single = Metrics::new();
        for &s in &samples {
            single.session_opened();
            single.session_closed("d", "compute", Ok(()), usage(s, 2 * s, 2, s));
        }
        let folded = std::sync::Arc::new(Metrics::new());
        let mut handles = Vec::new();
        for chunk in samples.chunks(samples.len() / 4) {
            let m = std::sync::Arc::clone(&folded);
            let chunk = chunk.to_vec();
            handles.push(std::thread::spawn(move || {
                for s in chunk {
                    m.session_opened();
                    m.session_closed("d", "compute", Ok(()), usage(s, 2 * s, 2, s));
                }
            }));
        }
        for h in handles {
            h.join().expect("fold thread");
        }
        let mut a = single.snapshot();
        let mut b = folded.snapshot();
        a.uptime_micros = 0;
        b.uptime_micros = 0;
        assert_eq!(a, b, "fold is schedule-invariant");
        let d = a.driver("d", "compute").unwrap();
        assert_eq!(d.wall_count, samples.len() as u64);
        assert_eq!(d.wall_sum_micros, samples.iter().sum::<u64>());
        assert!(d.p50_micros <= d.p95_micros && d.p95_micros <= d.p99_micros);
    }

    #[test]
    fn session_log_line_is_valid_json() {
        let rec = SessionLogRecord {
            seq: 7,
            ts_micros: 1_700_000_000_000_000,
            session: 42,
            peer: "127.0.0.1:5000",
            driver: "hom_pir",
            mode: "compute",
            outcome: "ok",
            wall_micros: 1234,
            bytes_in: 10,
            bytes_out: 20,
            half_rounds: 2,
        };
        let line = rec.render();
        let doc = json::parse(&line).expect("log line is JSON");
        assert_eq!(doc.get("event").and_then(Json::as_str), Some("session"));
        assert_eq!(doc.get("session").and_then(Json::as_u64), Some(42));
        assert_eq!(doc.get("outcome").and_then(Json::as_str), Some("ok"));
        assert_eq!(doc.get("bytes_out").and_then(Json::as_u64), Some(20));
        // Hostile driver names stay inside the string literal.
        let hostile = SessionLogRecord {
            driver: "x\",\n\"inject",
            ..rec
        };
        assert!(json::parse(&hostile.render()).is_ok());
    }

    #[test]
    fn session_log_seq_roundtrips_and_is_monotonic() {
        // The seq field survives a render → parse roundtrip.
        let rec = SessionLogRecord {
            seq: next_log_seq(),
            ts_micros: 123,
            session: 1,
            peer: "local",
            driver: "d",
            mode: "relay",
            outcome: "ok",
            wall_micros: 1,
            bytes_in: 0,
            bytes_out: 0,
            half_rounds: 0,
        };
        let doc = json::parse(&rec.render()).expect("log line is JSON");
        assert_eq!(doc.get("seq").and_then(Json::as_u64), Some(rec.seq));
        // The allocator is monotonic (and strictly increasing) per
        // process, even when other threads draw from it concurrently.
        let a = next_log_seq();
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| (0..100).map(|_| next_log_seq()).collect::<Vec<_>>()))
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("seq thread"))
            .collect();
        let b = next_log_seq();
        assert!(a >= 1 && b > a);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400, "no two lines share a sequence number");
        assert!(all.iter().all(|&s| a < s && s < b));
    }
}
