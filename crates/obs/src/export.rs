//! Trace exporters: Perfetto/Chrome `trace_event` JSON and flamegraph
//! folded stacks.
//!
//! Both consume a captured [`Trace`] (see [`crate::trace::take`]):
//!
//! * [`perfetto_json`] emits the Chrome `trace_event` JSON object format —
//!   load the file in <https://ui.perfetto.dev> or `chrome://tracing` to
//!   scrub through span nesting, wire messages, fault injections and
//!   retries on a per-thread timeline.
//! * [`folded`] emits flamegraph folded-stack lines (`frame;frame weight`),
//!   one per span path, weighted by wall-time *self* nanoseconds, by a
//!   chosen op counter's span-attributed deltas, or (under `obs-alloc`)
//!   by span-attributed heap allocations/bytes — pipe through
//!   `flamegraph.pl` or paste into a flamegraph viewer.
//!
//! A trace truncated by the journal cap can contain spans whose close was
//! never recorded; both exporters repair such spans by closing them at the
//! thread's last observed timestamp, so the artifacts always load.

use crate::counter::Op;
use crate::json::escape;
use crate::trace::{EventKind, ThreadTrace, Trace};
use std::collections::BTreeMap;

/// What weights the folded-stack output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldWeight {
    /// Wall-clock self nanoseconds per span path.
    WallNs,
    /// Span-attributed deltas of one op counter.
    Op(Op),
    /// Span-attributed heap allocation counts (requires a trace captured
    /// under `obs-alloc`, see [`crate::mem`]).
    Allocs,
    /// Span-attributed heap allocated bytes (requires `obs-alloc`).
    AllocBytes,
}

/// Renders `trace` as a Chrome `trace_event` JSON object (the format
/// Perfetto and `chrome://tracing` load directly).
pub fn perfetto_json(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"schema\":\"spfe-trace/v1\",\"cap\":{},\"dropped\":{}}},\"traceEvents\":[",
        trace.cap,
        trace.total_dropped()
    ));
    let mut first = true;
    let mut emit = |out: &mut String, ev: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&ev);
    };
    for t in &trace.threads {
        let tid = t.thread;
        let mut open: Vec<&str> = Vec::new();
        let mut open_sessions: Vec<&str> = Vec::new();
        let mut last_ns = 0u64;
        for e in &t.events {
            last_ns = last_ns.max(e.t_ns);
            let ts = micros(e.t_ns);
            match e.kind {
                EventKind::SpanOpen => {
                    open.push(e.label);
                    emit(&mut out, format!(
                        "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}}}",
                        escape(e.label)
                    ));
                }
                EventKind::SpanClose => {
                    // An unmatched close (recorder guards against these,
                    // but be safe on hand-built traces) is skipped.
                    if open.pop().is_some() {
                        emit(&mut out, format!(
                            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}}}",
                            escape(e.label)
                        ));
                    }
                }
                EventKind::OpDelta => emit(&mut out, format!(
                    "{{\"name\":\"{}\",\"cat\":\"op\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"delta\":{}}}}}",
                    escape(e.label), e.a
                )),
                EventKind::MemDelta => emit(&mut out, format!(
                    "{{\"name\":\"{}\",\"cat\":\"mem\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"delta\":{}}}}}",
                    escape(e.label), e.a
                )),
                EventKind::WireUp | EventKind::WireDown => {
                    let dir = if e.kind == EventKind::WireUp { "up" } else { "down" };
                    emit(&mut out, format!(
                        "{{\"name\":\"{}\",\"cat\":\"wire\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"dir\":\"{dir}\",\"bytes\":{},\"server\":{}}}}}",
                        escape(e.label), e.a, e.b
                    ));
                }
                EventKind::Fault => emit(&mut out, format!(
                    "{{\"name\":\"fault:{}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"server\":{}}}}}",
                    escape(e.label), e.b
                )),
                EventKind::Retry => emit(&mut out, format!(
                    "{{\"name\":\"retry:{}\",\"cat\":\"retry\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"attempt\":{},\"server\":{}}}}}",
                    escape(e.label), e.a, e.b
                )),
                EventKind::ViewSeal => emit(&mut out, format!(
                    "{{\"name\":\"view:{}\",\"cat\":\"view\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"events\":{},\"server\":{}}}}}",
                    escape(e.label), e.a, e.b
                )),
                EventKind::NetSessionOpen => {
                    open_sessions.push(e.label);
                    emit(&mut out, format!(
                        "{{\"name\":\"session:{}\",\"cat\":\"session\",\"ph\":\"B\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"session\":{},\"mode\":{}}}}}",
                        escape(e.label), e.a, e.b
                    ));
                }
                EventKind::NetSessionClose => {
                    if open_sessions.pop().is_some() {
                        emit(&mut out, format!(
                            "{{\"name\":\"session:{}\",\"cat\":\"session\",\"ph\":\"E\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}}}",
                            escape(e.label)
                        ));
                    }
                }
                EventKind::NetSend | EventKind::NetRecv => {
                    let dir = if e.kind == EventKind::NetSend { "send" } else { "recv" };
                    let (half_round, lamport) = crate::trace::unpack_net_stamp(e.b);
                    emit(&mut out, format!(
                        "{{\"name\":\"{}\",\"cat\":\"net\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"dir\":\"{dir}\",\"bytes\":{},\"half_round\":{half_round},\"lamport\":{lamport}}}}}",
                        escape(e.label), e.a
                    ));
                }
            }
        }
        // Repair: close cap-truncated spans (and session slices) at the
        // last seen timestamp.
        while let Some(name) = open.pop() {
            let ts = micros(last_ns);
            emit(&mut out, format!(
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}}}",
                escape(name)
            ));
        }
        while let Some(name) = open_sessions.pop() {
            let ts = micros(last_ns);
            emit(&mut out, format!(
                "{{\"name\":\"session:{}\",\"cat\":\"session\",\"ph\":\"E\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}}}",
                escape(name)
            ));
        }
    }
    out.push_str("\n]}\n");
    out
}

fn micros(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1_000.0)
}

/// Escapes a span label for use as one folded-stack frame: `\`, `;` (the
/// frame separator) and `/` (the span-path separator) get a backslash.
pub fn escape_frame(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ';' => out.push_str("\\;"),
            '/' => out.push_str("\\/"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `trace` as flamegraph folded-stack lines, one `frames weight`
/// line per distinct span stack (sorted), frames `;`-joined. Zero-weight
/// stacks are omitted; the output ends with a newline unless empty.
pub fn folded(trace: &Trace, weight: FoldWeight) -> String {
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for t in &trace.threads {
        fold_thread(t, weight, &mut weights);
    }
    let mut out = String::new();
    for (stack, w) in &weights {
        if *w > 0 {
            out.push_str(&format!("{stack} {w}\n"));
        }
    }
    out
}

struct Frame<'a> {
    label: &'a str,
    open_ns: u64,
    /// Wall time already attributed to children (for self-time).
    child_ns: u64,
}

fn fold_thread(t: &ThreadTrace, weight: FoldWeight, weights: &mut BTreeMap<String, u64>) {
    let mut stack: Vec<Frame<'_>> = Vec::new();
    let mut last_ns = 0u64;
    let key = |stack: &[Frame<'_>]| {
        stack
            .iter()
            .map(|f| escape_frame(f.label))
            .collect::<Vec<_>>()
            .join(";")
    };
    let close = |stack: &mut Vec<Frame<'_>>, t_ns: u64, weights: &mut BTreeMap<String, u64>| {
        let path = key(stack);
        let Some(frame) = stack.pop() else {
            return;
        };
        if weight == FoldWeight::WallNs {
            let total = t_ns.saturating_sub(frame.open_ns);
            let self_ns = total.saturating_sub(frame.child_ns);
            if let Some(parent) = stack.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(total);
            }
            *weights.entry(path).or_insert(0) += self_ns;
        }
    };
    for e in &t.events {
        last_ns = last_ns.max(e.t_ns);
        match e.kind {
            EventKind::SpanOpen => stack.push(Frame {
                label: e.label,
                open_ns: e.t_ns,
                child_ns: 0,
            }),
            EventKind::SpanClose => close(&mut stack, e.t_ns, weights),
            EventKind::OpDelta => {
                if let FoldWeight::Op(op) = weight {
                    if e.label == op.name() && !stack.is_empty() {
                        *weights.entry(key(&stack)).or_insert(0) += e.a;
                    }
                }
            }
            EventKind::MemDelta => {
                let wanted = match weight {
                    FoldWeight::Allocs => crate::mem::ALLOCS_LABEL,
                    FoldWeight::AllocBytes => crate::mem::ALLOC_BYTES_LABEL,
                    _ => continue,
                };
                if e.label == wanted && !stack.is_empty() {
                    *weights.entry(key(&stack)).or_insert(0) += e.a;
                }
            }
            _ => {}
        }
    }
    // Repair: close cap-truncated spans at the last seen timestamp.
    while !stack.is_empty() {
        close(&mut stack, last_ns, weights);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::trace::Event;

    fn ev(kind: EventKind, t_ns: u64, label: &'static str, a: u64, b: u64) -> Event {
        Event {
            kind,
            t_ns,
            label,
            a,
            b,
        }
    }

    /// outer [0, 1000] containing inner [200, 700], with op deltas and a
    /// wire message inside inner.
    fn sample_trace() -> Trace {
        Trace {
            threads: vec![ThreadTrace {
                thread: 0,
                events: vec![
                    ev(EventKind::SpanOpen, 0, "outer", 0, 0),
                    ev(EventKind::SpanOpen, 200, "inner", 0, 0),
                    ev(EventKind::WireUp, 300, "q", 64, 0),
                    ev(EventKind::WireDown, 400, "a", 32, 0),
                    ev(EventKind::OpDelta, 700, "modexp", 9, 0),
                    ev(EventKind::MemDelta, 700, "allocs", 3, 0),
                    ev(EventKind::MemDelta, 700, "alloc_bytes", 2048, 0),
                    ev(EventKind::SpanClose, 700, "inner", 0, 0),
                    ev(EventKind::Fault, 800, "drop", 0, 1),
                    ev(EventKind::Retry, 850, "q", 1, 1),
                    ev(EventKind::OpDelta, 1000, "modexp", 4, 0),
                    ev(EventKind::MemDelta, 1000, "alloc_bytes", 1024, 0),
                    ev(EventKind::SpanClose, 1000, "outer", 0, 0),
                ],
                dropped: 0,
            }],
            cap: 1024,
        }
    }

    #[test]
    fn perfetto_output_is_valid_json_with_matched_spans() {
        let doc = parse(&perfetto_json(&sample_trace())).unwrap();
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let phase = |p: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(p))
                .count()
        };
        assert_eq!(phase("B"), 2);
        assert_eq!(phase("E"), 2);
        assert_eq!(phase("i"), 9, "2 wire + 2 op + 3 mem + fault + retry");
        let mem = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("mem"))
            .unwrap();
        assert_eq!(mem.get("name").and_then(Json::as_str), Some("allocs"));
        assert_eq!(
            mem.get("args").unwrap().get("delta").and_then(Json::as_u64),
            Some(3)
        );
        let wire = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("wire"))
            .unwrap();
        let args = wire.get("args").unwrap();
        assert_eq!(args.get("bytes").and_then(Json::as_u64), Some(64));
        assert_eq!(args.get("dir").and_then(Json::as_str), Some("up"));
        let fault = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("fault"))
            .unwrap();
        assert_eq!(fault.get("name").and_then(Json::as_str), Some("fault:drop"));
    }

    #[test]
    fn perfetto_repairs_unclosed_spans() {
        let trace = Trace {
            threads: vec![ThreadTrace {
                thread: 3,
                events: vec![
                    ev(EventKind::SpanOpen, 10, "truncated", 0, 0),
                    ev(EventKind::WireUp, 500, "q", 8, 0),
                ],
                dropped: 7,
            }],
            cap: 2,
        };
        let doc = parse(&perfetto_json(&trace)).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("E"))
            .collect();
        assert_eq!(ends.len(), 1, "synthesized close");
        assert_eq!(
            ends[0].get("ts").and_then(Json::as_f64),
            Some(0.5),
            "closed at the last seen timestamp (500 ns = 0.5 µs)"
        );
        assert_eq!(
            doc.get("otherData")
                .unwrap()
                .get("dropped")
                .and_then(Json::as_u64),
            Some(7)
        );
    }

    #[test]
    fn net_events_export_session_slices_and_stamped_instants() {
        let stamp =
            |half_round: u32, lamport: u32| (u64::from(half_round) << 32) | u64::from(lamport);
        let trace = Trace {
            threads: vec![ThreadTrace {
                thread: 0,
                events: vec![
                    ev(EventKind::NetSessionOpen, 0, "xor2", 42, 1),
                    ev(EventKind::NetSend, 100, "q", 64, stamp(1, 1)),
                    ev(EventKind::NetRecv, 300, "a", 32, stamp(2, 3)),
                    ev(EventKind::NetSessionClose, 400, "xor2", 42, 1),
                    // A second session whose close was lost to the cap.
                    ev(EventKind::NetSessionOpen, 500, "hom_pir", 43, 0),
                ],
                dropped: 0,
            }],
            cap: 16,
        };
        let doc = parse(&perfetto_json(&trace)).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let sessions: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("session"))
            .collect();
        assert_eq!(sessions.len(), 4, "2 opens + 1 close + 1 repaired close");
        let open = sessions
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("session:xor2"))
            .unwrap();
        let args = open.get("args").unwrap();
        assert_eq!(args.get("session").and_then(Json::as_u64), Some(42));
        assert_eq!(args.get("mode").and_then(Json::as_u64), Some(1));
        let send = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("net"))
            .unwrap();
        let args = send.get("args").unwrap();
        assert_eq!(args.get("dir").and_then(Json::as_str), Some("send"));
        assert_eq!(args.get("bytes").and_then(Json::as_u64), Some(64));
        assert_eq!(args.get("half_round").and_then(Json::as_u64), Some(1));
        assert_eq!(args.get("lamport").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn folded_wall_weights_are_self_time() {
        let out = folded(&sample_trace(), FoldWeight::WallNs);
        let lines: Vec<&str> = out.lines().collect();
        // outer self = 1000 − inner's 500; inner self = 500.
        assert_eq!(lines, vec!["outer 500", "outer;inner 500"]);
    }

    #[test]
    fn folded_op_weights_use_span_attributed_deltas() {
        let out = folded(&sample_trace(), FoldWeight::Op(Op::Modexp));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines, vec!["outer 4", "outer;inner 9"]);
        // An op nobody counted folds to nothing.
        assert_eq!(folded(&sample_trace(), FoldWeight::Op(Op::GmEncrypt)), "");
    }

    #[test]
    fn folded_alloc_weights_use_mem_deltas() {
        let out = folded(&sample_trace(), FoldWeight::AllocBytes);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines, vec!["outer 1024", "outer;inner 2048"]);
        let out = folded(&sample_trace(), FoldWeight::Allocs);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines, vec!["outer;inner 3"], "only inner counted allocs");
    }

    #[test]
    fn folded_escapes_separator_characters_in_labels() {
        let trace = Trace {
            threads: vec![ThreadTrace {
                thread: 0,
                events: vec![
                    ev(EventKind::SpanOpen, 0, "a/b", 0, 0),
                    ev(EventKind::SpanOpen, 10, "c;d", 0, 0),
                    ev(EventKind::SpanClose, 40, "c;d", 0, 0),
                    ev(EventKind::SpanClose, 100, "a/b", 0, 0),
                ],
                dropped: 0,
            }],
            cap: 16,
        };
        let out = folded(&trace, FoldWeight::WallNs);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines, vec!["a\\/b 70", "a\\/b;c\\;d 30"]);
        assert_eq!(escape_frame("x\\y/z;w"), "x\\\\y\\/z\\;w");
    }

    #[test]
    fn folded_repairs_unclosed_spans_and_merges_threads() {
        let trace = Trace {
            threads: vec![
                ThreadTrace {
                    thread: 0,
                    events: vec![
                        ev(EventKind::SpanOpen, 0, "p", 0, 0),
                        ev(EventKind::SpanClose, 100, "p", 0, 0),
                    ],
                    dropped: 0,
                },
                ThreadTrace {
                    thread: 1,
                    events: vec![
                        ev(EventKind::SpanOpen, 0, "p", 0, 0),
                        ev(EventKind::WireUp, 60, "q", 1, 0),
                    ],
                    dropped: 0,
                },
            ],
            cap: 16,
        };
        let out = folded(&trace, FoldWeight::WallNs);
        assert_eq!(out, "p 160\n", "100 closed + 60 repaired, merged");
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let trace = Trace::default();
        assert!(parse(&perfetto_json(&trace)).is_ok());
        assert_eq!(folded(&trace, FoldWeight::WallNs), "");
    }
}
