//! A version-aware reader for persisted cost-report suites.
//!
//! `BENCH_costs.json` files exist in three schema versions: `v1` (PR 2,
//! spans carry `path`/`calls`/`ns`), `v2` (spans add the
//! `p50_ns`/`p95_ns`/`p99_ns` latency quantiles) and `v3` (spans add the
//! heap axis — `allocs`/`alloc_bytes`/`peak_live_bytes` — and each report
//! gains a `mem` object). [`parse_suite`] accepts all three — strict
//! about every field the version defines — and returns the reports as
//! in-memory [`CostReport`]s plus the detected version, so the
//! `spfe-tables validate` and `trend` subcommands share one parser and
//! old committed baselines keep working.

use crate::counter::Op;
use crate::json::{parse, Json};
use crate::mem::MemStat;
use crate::report::{CommStat, CostReport, LabelStat, OpStat, SCHEMA, SCHEMA_V1, SCHEMA_V2};
use crate::span::SpanStat;

/// A parsed cost-report suite.
#[derive(Debug, Clone, PartialEq)]
pub struct Suite {
    /// Detected schema version (1, 2 or 3).
    pub version: u32,
    /// The `threads` header field.
    pub threads: u64,
    /// Every report, in file order. Fields a version predates parse as 0
    /// (v1: span quantiles; v1/v2: the heap axis).
    pub reports: Vec<CostReport>,
}

impl Suite {
    /// The schema tag this suite was read under.
    pub fn schema(&self) -> &'static str {
        match self.version {
            1 => SCHEMA_V1,
            2 => SCHEMA_V2,
            _ => SCHEMA,
        }
    }

    /// The report for `(experiment, protocol)`, if present.
    pub fn find(&self, experiment: &str, protocol: &str) -> Option<&CostReport> {
        self.reports
            .iter()
            .find(|r| r.experiment == experiment && r.protocol == protocol)
    }
}

fn field_u64(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: missing or non-integer `{key}`"))
}

fn field_str<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: missing `{key}`"))
}

/// Parses a suite document in either schema version.
///
/// # Errors
///
/// A human-readable message on malformed JSON, an unknown schema tag, or
/// any missing/mistyped field the detected version requires.
pub fn parse_suite(src: &str) -> Result<Suite, String> {
    let doc = parse(src)?;
    let schema = field_str(&doc, "schema", "suite")?;
    let version = match schema {
        s if s == SCHEMA_V1 => 1,
        s if s == SCHEMA_V2 => 2,
        s if s == SCHEMA => 3,
        other => {
            return Err(format!(
                "unknown schema `{other}` (expected `{SCHEMA_V1}`, `{SCHEMA_V2}` or `{SCHEMA}`)"
            ))
        }
    };
    let threads = field_u64(&doc, "threads", "suite")?;
    if threads == 0 {
        return Err("`threads` must be >= 1".into());
    }
    let raw = doc
        .get("reports")
        .and_then(Json::as_arr)
        .ok_or("missing `reports` array")?;
    let mut reports = Vec::with_capacity(raw.len());
    for (i, r) in raw.iter().enumerate() {
        reports.push(parse_report(r, i, version)?);
    }
    Ok(Suite {
        version,
        threads,
        reports,
    })
}

fn parse_report(r: &Json, i: usize, version: u32) -> Result<CostReport, String> {
    let ctx = format!("report {i}");
    let experiment = field_str(r, "experiment", &ctx)?.to_owned();
    let protocol = field_str(r, "protocol", &ctx)?.to_owned();
    let elapsed_ns = field_u64(r, "elapsed_ns", &ctx)?;

    let mut spans = Vec::new();
    for s in r
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: missing `spans`"))?
    {
        let path = field_str(s, "path", &ctx)?.to_owned();
        let sctx = format!("{ctx} span `{path}`");
        let calls = field_u64(s, "calls", &sctx)?;
        let ns = field_u64(s, "ns", &sctx)?;
        // v2+ requires the quantile fields; v1 predates them (0 if
        // absent). v3 additionally requires the heap fields.
        let quant = |key: &str| -> Result<u64, String> {
            match version {
                1 => Ok(s.get(key).and_then(Json::as_u64).unwrap_or(0)),
                _ => field_u64(s, key, &sctx),
            }
        };
        let heap = |key: &str| -> Result<u64, String> {
            match version {
                1 | 2 => Ok(s.get(key).and_then(Json::as_u64).unwrap_or(0)),
                _ => field_u64(s, key, &sctx),
            }
        };
        spans.push(SpanStat {
            path,
            calls,
            ns,
            p50_ns: quant("p50_ns")?,
            p95_ns: quant("p95_ns")?,
            p99_ns: quant("p99_ns")?,
            allocs: heap("allocs")?,
            alloc_bytes: heap("alloc_bytes")?,
            peak_live_bytes: heap("peak_live_bytes")?,
        });
    }

    let mut ops = Vec::new();
    for o in r
        .get("ops")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: missing `ops`"))?
    {
        let name = field_str(o, "name", &ctx)?;
        let op = Op::from_name(name).ok_or_else(|| format!("{ctx}: unknown op name `{name}`"))?;
        let count = field_u64(o, "count", &format!("{ctx} op `{name}`"))?;
        if o.get("deterministic").is_none() {
            return Err(format!("{ctx}: op `{name}` missing `deterministic`"));
        }
        ops.push(OpStat { op, count });
    }

    let comm = r
        .get("comm")
        .ok_or_else(|| format!("{ctx}: missing `comm`"))?;
    let cctx = format!("{ctx} comm");
    let mut labels = Vec::new();
    for l in comm
        .get("labels")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{cctx}: missing `labels`"))?
    {
        let label = field_str(l, "label", &cctx)?.to_owned();
        let lctx = format!("{cctx} label `{label}`");
        labels.push(LabelStat {
            label,
            up_bytes: field_u64(l, "up_bytes", &lctx)?,
            up_msgs: field_u64(l, "up_msgs", &lctx)?,
            down_bytes: field_u64(l, "down_bytes", &lctx)?,
            down_msgs: field_u64(l, "down_msgs", &lctx)?,
        });
    }
    let half_rounds = field_u64(comm, "half_rounds", &cctx)?;
    let comm = CommStat {
        up_bytes: field_u64(comm, "up_bytes", &cctx)?,
        down_bytes: field_u64(comm, "down_bytes", &cctx)?,
        messages: field_u64(comm, "messages", &cctx)?,
        half_rounds: u32::try_from(half_rounds)
            .map_err(|_| format!("{cctx}: `half_rounds` out of range"))?,
        labels,
    };

    // The report-level heap object is required in v3, absent before.
    let mem = match r.get("mem") {
        Some(m) => {
            let mctx = format!("{ctx} mem");
            MemStat {
                allocs: field_u64(m, "allocs", &mctx)?,
                alloc_bytes: field_u64(m, "alloc_bytes", &mctx)?,
                free_bytes: field_u64(m, "free_bytes", &mctx)?,
                reallocs: field_u64(m, "reallocs", &mctx)?,
                live_bytes: field_u64(m, "live_bytes", &mctx)?,
                peak_live_bytes: field_u64(m, "peak_live_bytes", &mctx)?,
            }
        }
        None if version >= 3 => return Err(format!("{ctx}: missing `mem`")),
        None => MemStat::default(),
    };

    Ok(CostReport {
        experiment,
        protocol,
        elapsed_ns,
        spans,
        ops,
        comm,
        mem,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::suite_json;

    fn sample_report() -> CostReport {
        CostReport {
            experiment: "e1".into(),
            protocol: "spir".into(),
            elapsed_ns: 5_000,
            spans: vec![SpanStat {
                path: "spir/server-scan".into(),
                calls: 2,
                ns: 4_000,
                p50_ns: 2_047,
                p95_ns: 2_047,
                p99_ns: 2_047,
                allocs: 12,
                alloc_bytes: 1_536,
                peak_live_bytes: 9_000,
            }],
            ops: vec![OpStat {
                op: Op::Modexp,
                count: 17,
            }],
            comm: CommStat {
                up_bytes: 64,
                down_bytes: 32,
                messages: 2,
                half_rounds: 2,
                labels: vec![LabelStat {
                    label: "spir-query".into(),
                    up_bytes: 64,
                    up_msgs: 1,
                    down_bytes: 0,
                    down_msgs: 0,
                }],
            },
            mem: MemStat {
                allocs: 20,
                alloc_bytes: 2_560,
                free_bytes: 2_048,
                reallocs: 1,
                live_bytes: 512,
                peak_live_bytes: 9_500,
            },
        }
    }

    #[test]
    fn v3_roundtrips_through_suite_json() {
        let reports = vec![sample_report()];
        let suite = parse_suite(&suite_json(4, &reports)).unwrap();
        assert_eq!(suite.version, 3);
        assert_eq!(suite.schema(), SCHEMA);
        assert_eq!(suite.threads, 4);
        assert_eq!(suite.reports, reports);
        assert!(suite.find("e1", "spir").is_some());
        assert!(suite.find("e1", "nope").is_none());
    }

    /// A hand-written v1 document (the PR 2 schema: spans without
    /// quantiles) must keep parsing.
    const V1_DOC: &str = r#"{
      "schema": "spfe-cost-report/v1",
      "threads": 1,
      "reports": [
        {"experiment":"e1","protocol":"p","elapsed_ns":9,
         "spans":[{"path":"s","calls":1,"ns":7}],
         "ops":[{"name":"modexp","count":3,"deterministic":true}],
         "comm":{"up_bytes":1,"down_bytes":2,"messages":1,"half_rounds":1,
                 "labels":[{"label":"q","up_bytes":1,"up_msgs":1,"down_bytes":0,"down_msgs":0}]}}
      ]
    }"#;

    #[test]
    fn v1_documents_still_parse() {
        let suite = parse_suite(V1_DOC).unwrap();
        assert_eq!(suite.version, 1);
        assert_eq!(suite.schema(), SCHEMA_V1);
        let r = suite.find("e1", "p").unwrap();
        assert_eq!(r.op_count(Op::Modexp), 3);
        assert_eq!(r.spans[0].p50_ns, 0, "v1 spans default the quantiles");
    }

    #[test]
    fn v2_requires_quantile_fields() {
        let doc = V1_DOC.replace("spfe-cost-report/v1", "spfe-cost-report/v2");
        let err = parse_suite(&doc).unwrap_err();
        assert!(err.contains("p50_ns"), "{err}");
    }

    /// A hand-written v2 document (quantiles, no heap axis) must keep
    /// parsing, with the heap fields defaulted to zero.
    const V2_DOC: &str = r#"{
      "schema": "spfe-cost-report/v2",
      "threads": 2,
      "reports": [
        {"experiment":"e1","protocol":"p","elapsed_ns":9,
         "spans":[{"path":"s","calls":1,"ns":7,"p50_ns":7,"p95_ns":7,"p99_ns":7}],
         "ops":[{"name":"modexp","count":3,"deterministic":true}],
         "comm":{"up_bytes":1,"down_bytes":2,"messages":1,"half_rounds":1,
                 "labels":[{"label":"q","up_bytes":1,"up_msgs":1,"down_bytes":0,"down_msgs":0}]}}
      ]
    }"#;

    #[test]
    fn v2_documents_still_parse_with_zero_heap() {
        let suite = parse_suite(V2_DOC).unwrap();
        assert_eq!(suite.version, 2);
        assert_eq!(suite.schema(), SCHEMA_V2);
        let r = suite.find("e1", "p").unwrap();
        assert_eq!(r.spans[0].p50_ns, 7);
        assert_eq!(r.spans[0].alloc_bytes, 0, "v2 spans default the heap axis");
        assert_eq!(r.mem, MemStat::default(), "v2 reports default `mem`");
    }

    #[test]
    fn v3_requires_heap_fields_and_mem() {
        // Same document claiming v3: the span heap fields are missing.
        let doc = V2_DOC.replace("spfe-cost-report/v2", "spfe-cost-report/v3");
        let err = parse_suite(&doc).unwrap_err();
        assert!(err.contains("allocs"), "{err}");
        // With the span fields present but no report-level `mem` object.
        let doc = doc.replace(
            "\"p99_ns\":7}",
            "\"p99_ns\":7,\"allocs\":1,\"alloc_bytes\":8,\"peak_live_bytes\":8}",
        );
        let err = parse_suite(&doc).unwrap_err();
        assert!(err.contains("missing `mem`"), "{err}");
    }

    #[test]
    fn unknown_schema_and_ops_rejected() {
        let err = parse_suite(&V1_DOC.replace("/v1", "/v9")).unwrap_err();
        assert!(err.contains("unknown schema"), "{err}");
        let err = parse_suite(&V1_DOC.replace("modexp", "frobnicate")).unwrap_err();
        assert!(err.contains("unknown op name"), "{err}");
    }

    #[test]
    fn missing_fields_name_their_context() {
        let err = parse_suite(&V1_DOC.replace("\"threads\": 1,", "")).unwrap_err();
        assert!(err.contains("threads"), "{err}");
        let err = parse_suite(&V1_DOC.replace("\"calls\":1,", "")).unwrap_err();
        assert!(err.contains("calls"), "{err}");
    }
}
