//! Sharded relaxed-atomic op counters.
//!
//! Each thread is assigned (round-robin, on first use) one of a fixed set
//! of cache-line-aligned shards; [`count`] is a single relaxed `fetch_add`
//! on the caller's shard, so pool workers never contend on a line.
//! [`ops_snapshot`] sums the shards — addition commutes, so the totals for
//! deterministic ops are independent of the thread count and schedule.

/// A countable hot-path operation.
///
/// The discriminant doubles as the per-shard array index, so new ops go at
/// the end and [`Op::ALL`] must list every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Op {
    /// Generic Montgomery modular exponentiation (`Montgomery::pow`).
    Modexp,
    /// Fixed-base comb exponentiation (`FixedBasePow::pow`). The
    /// over-capacity fallback *also* counts one [`Op::Modexp`].
    FixedBaseExp,
    /// Paillier encryption (fresh randomness).
    PaillierEncrypt,
    /// Paillier decryption.
    PaillierDecrypt,
    /// ElGamal (exponent-message) encryption.
    ElGamalEncrypt,
    /// ElGamal decryption (baby-step/giant-step discrete log included).
    ElGamalDecrypt,
    /// Goldwasser–Micali single-bit encryption.
    GmEncrypt,
    /// Goldwasser–Micali single-bit decryption.
    GmDecrypt,
    /// Homomorphic ciphertext addition (any scheme).
    HomAdd,
    /// Homomorphic plaintext-scalar multiplication (any scheme).
    HomScalarMul,
    /// Ciphertext rerandomization (any scheme).
    HomRerandomize,
    /// 1-out-of-2 OT sender transfers.
    Ot2Transfer,
    /// 1-out-of-n OT sender answers (each also counts its base
    /// [`Op::Ot2Transfer`]s).
    OtnTransfer,
    /// Database cells touched by homomorphic PIR server scans.
    PirWordsScanned,
    /// Worker-pool invocations that actually went parallel (gauge).
    PoolRuns,
    /// Blocks dispatched by the worker pool (gauge).
    PoolBlocks,
    /// Blocks claimed by a worker other than the block's home worker
    /// (gauge; see `spfe-math::par`).
    PoolSteals,
    /// Transport faults injected by a `FaultyChannel` (gauge: varies with
    /// the fault seed, not the computation).
    FaultsInjected,
    /// Message re-deliveries after transient transport faults (gauge:
    /// varies with the fault seed, not the computation).
    Retries,
}

/// Number of distinct ops (length of the per-shard counter array).
const NUM_OPS: usize = 19;

impl Op {
    /// Every variant, in discriminant order.
    pub const ALL: [Op; NUM_OPS] = [
        Op::Modexp,
        Op::FixedBaseExp,
        Op::PaillierEncrypt,
        Op::PaillierDecrypt,
        Op::ElGamalEncrypt,
        Op::ElGamalDecrypt,
        Op::GmEncrypt,
        Op::GmDecrypt,
        Op::HomAdd,
        Op::HomScalarMul,
        Op::HomRerandomize,
        Op::Ot2Transfer,
        Op::OtnTransfer,
        Op::PirWordsScanned,
        Op::PoolRuns,
        Op::PoolBlocks,
        Op::PoolSteals,
        Op::FaultsInjected,
        Op::Retries,
    ];

    /// Stable machine-readable name (used in JSON and on the wire).
    pub fn name(self) -> &'static str {
        match self {
            Op::Modexp => "modexp",
            Op::FixedBaseExp => "fixed_base_exp",
            Op::PaillierEncrypt => "paillier_encrypt",
            Op::PaillierDecrypt => "paillier_decrypt",
            Op::ElGamalEncrypt => "elgamal_encrypt",
            Op::ElGamalDecrypt => "elgamal_decrypt",
            Op::GmEncrypt => "gm_encrypt",
            Op::GmDecrypt => "gm_decrypt",
            Op::HomAdd => "hom_add",
            Op::HomScalarMul => "hom_scalar_mul",
            Op::HomRerandomize => "hom_rerandomize",
            Op::Ot2Transfer => "ot2_transfer",
            Op::OtnTransfer => "otn_transfer",
            Op::PirWordsScanned => "pir_words_scanned",
            Op::PoolRuns => "pool_runs",
            Op::PoolBlocks => "pool_blocks",
            Op::PoolSteals => "pool_steals",
            Op::FaultsInjected => "faults_injected",
            Op::Retries => "retries",
        }
    }

    /// Parses [`Op::name`] back (wire/JSON decode).
    pub fn from_name(name: &str) -> Option<Op> {
        Op::ALL.into_iter().find(|op| op.name() == name)
    }

    /// Whether the count is a pure function of the computation (identical
    /// across thread counts, schedules, and fault seeds). `Pool*` gauges
    /// are not: the sequential fallback at 1 thread never runs the pool at
    /// all. Fault/retry tallies are not either: they follow the fault
    /// seed, while the computation they perturb stays the same (retries
    /// re-send already encoded bytes).
    pub fn deterministic(self) -> bool {
        !matches!(
            self,
            Op::PoolRuns | Op::PoolBlocks | Op::PoolSteals | Op::FaultsInjected | Op::Retries
        )
    }
}

/// A point-in-time copy of all op counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpsSnapshot {
    counts: [u64; NUM_OPS],
}

impl OpsSnapshot {
    /// The count for one op.
    pub fn get(&self, op: Op) -> u64 {
        self.counts[op as usize]
    }

    /// `(op, count)` pairs with nonzero counts, in discriminant order.
    pub fn nonzero(&self) -> impl Iterator<Item = (Op, u64)> + '_ {
        Op::ALL
            .into_iter()
            .map(|op| (op, self.get(op)))
            .filter(|&(_, c)| c > 0)
    }

    /// This snapshot with the scheduler gauges zeroed — the part that must
    /// be identical across `SPFE_THREADS` settings.
    pub fn deterministic_part(&self) -> OpsSnapshot {
        let mut out = *self;
        for op in Op::ALL {
            if !op.deterministic() {
                out.counts[op as usize] = 0;
            }
        }
        out
    }
}

#[cfg(feature = "obs")]
mod imp {
    use super::{OpsSnapshot, NUM_OPS};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    /// Shard count: enough that a dozen pool workers rarely collide.
    const NUM_SHARDS: usize = 32;

    /// One cache line (or more) per shard so workers on different shards
    /// never write-share.
    #[repr(align(64))]
    struct Shard {
        counts: [AtomicU64; NUM_OPS],
    }

    static SHARDS: [Shard; NUM_SHARDS] = [const {
        Shard {
            counts: [const { AtomicU64::new(0) }; NUM_OPS],
        }
    }; NUM_SHARDS];

    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

    thread_local! {
        /// Round-robin shard assignment on first use per thread.
        static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
    }

    #[inline]
    pub fn count(op: super::Op, n: u64) {
        let s = MY_SHARD.with(|s| *s);
        SHARDS[s].counts[op as usize].fetch_add(n, Ordering::Relaxed);
    }

    pub fn ops_snapshot() -> OpsSnapshot {
        let mut counts = [0u64; NUM_OPS];
        for shard in &SHARDS {
            for (total, c) in counts.iter_mut().zip(&shard.counts) {
                *total = total.wrapping_add(c.load(Ordering::Relaxed));
            }
        }
        OpsSnapshot { counts }
    }

    pub fn reset_ops() {
        for shard in &SHARDS {
            for c in &shard.counts {
                c.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Adds `n` to `op`'s counter (relaxed; no-op without the `obs` feature).
/// With tracing on, the delta is also attributed to the calling thread's
/// innermost open span in the event journal.
#[inline]
pub fn count(op: Op, n: u64) {
    #[cfg(feature = "obs")]
    {
        imp::count(op, n);
        if crate::trace::tracing() {
            crate::trace::on_op(op, n);
        }
    }
    #[cfg(not(feature = "obs"))]
    let _ = (op, n);
}

/// Sums all shards into a consistent-enough snapshot. Call it from the
/// measuring thread after the measured work has joined; relaxed loads are
/// exact once the incrementing threads are quiescent.
pub fn ops_snapshot() -> OpsSnapshot {
    #[cfg(feature = "obs")]
    {
        imp::ops_snapshot()
    }
    #[cfg(not(feature = "obs"))]
    {
        OpsSnapshot::default()
    }
}

/// Zeroes every counter (start of a measurement window).
pub fn reset_ops() {
    #[cfg(feature = "obs")]
    imp::reset_ops();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_variant_in_discriminant_order() {
        for (i, op) in Op::ALL.into_iter().enumerate() {
            assert_eq!(op as usize, i, "{op:?}");
        }
    }

    #[test]
    fn names_roundtrip() {
        for op in Op::ALL {
            assert_eq!(Op::from_name(op.name()), Some(op));
        }
        assert_eq!(Op::from_name("no-such-op"), None);
    }

    #[test]
    fn gauges_are_exactly_the_pool_and_fault_ops() {
        let gauges: Vec<Op> = Op::ALL.into_iter().filter(|o| !o.deterministic()).collect();
        assert_eq!(
            gauges,
            [
                Op::PoolRuns,
                Op::PoolBlocks,
                Op::PoolSteals,
                Op::FaultsInjected,
                Op::Retries
            ]
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn counts_sum_across_threads() {
        // Not exact-count (other tests in this binary may count too):
        // assert the *delta* from concurrent increments is what we added.
        let before = ops_snapshot().get(Op::PirWordsScanned);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        count(Op::PirWordsScanned, 3);
                    }
                });
            }
        });
        let after = ops_snapshot().get(Op::PirWordsScanned);
        assert!(after - before >= 8 * 1000 * 3);
    }

    #[test]
    fn deterministic_part_zeroes_gauges_only() {
        let mut snap = OpsSnapshot::default();
        snap.counts[Op::Modexp as usize] = 7;
        snap.counts[Op::PoolSteals as usize] = 9;
        let det = snap.deterministic_part();
        assert_eq!(det.get(Op::Modexp), 7);
        assert_eq!(det.get(Op::PoolSteals), 0);
    }
}
