//! Per-party view fingerprints: the leakage-audit layer (DESIGN.md §14).
//!
//! The paper's security claims are *view* claims: each server's view of a
//! session must be distributed independently of the client's secrets
//! (indices, weights, the selected statistic), and the client's view must
//! reveal nothing about the database beyond the agreed output. The cost
//! probes in this crate never look at views; this module makes the
//! *observable shape* of a view a first-class, hashable object.
//!
//! A [`PartyView`] is the ordered sequence of messages one party observes
//! — `(half_round, sent/received, label, byte length)` per message — plus,
//! for the client only, the session's deterministic op-counter vector (op
//! attribution is process-global, so it cannot be split per server; the
//! client sees every message and drives every decryption, making the
//! session tally part of *its* view). [`PartyView::fingerprint`] hashes a
//! canonical, injective serialization of that data (the `spfe-view/v1`
//! layout) with the module's own SHA-256.
//!
//! What fingerprint equality proves — and doesn't: two runs with the same
//! fingerprints exchanged byte-for-byte *equally sized* messages with the
//! same labels and round structure and did the same deterministic work.
//! It says nothing about message *contents* (a view-shape gate cannot see
//! a key leaked inside a fixed-size ciphertext), and a differential sweep
//! over secrets only certifies the secrets actually swept. See DESIGN.md
//! §14 for the full contract.
//!
//! This module is deliberately dependency-free and feature-independent:
//! fingerprints compute identically with or without the `obs` feature, so
//! an audit baseline gates every build flavor.

/// Version tag mixed into every canonical serialization; bump on any
/// layout change so old and new fingerprints can never collide.
pub const VIEW_SCHEMA: &str = "spfe-view/v1";

/// The observing party of a [`PartyView`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Party {
    /// The client: sees every message of the session.
    Client,
    /// Server `i`: sees only the messages on its own wire.
    Server(usize),
}

impl Party {
    /// Stable machine-readable name (`client`, `server0`, `server1`, …).
    pub fn name(self) -> String {
        match self {
            Party::Client => "client".to_owned(),
            Party::Server(i) => format!("server{i}"),
        }
    }
}

/// One message as observed by one party.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewEvent {
    /// Half-round during which the message crossed the wire.
    pub half_round: u32,
    /// `true` when the observing party sent the message, `false` when it
    /// received it.
    pub sent: bool,
    /// Protocol-level wire label (e.g. `"spir-query"`).
    pub label: String,
    /// Serialized size in bytes.
    pub bytes: u64,
}

/// The ordered, shape-only view of one party over one session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartyView {
    /// Whose view this is.
    pub party: Party,
    /// Every message the party observed, in wire order.
    pub events: Vec<ViewEvent>,
    /// `(op name, count)` pairs folded into the fingerprint — the
    /// session's deterministic op vector for the client, empty for
    /// servers (see the module docs).
    pub ops: Vec<(String, u64)>,
}

impl PartyView {
    /// A view with no messages and no op vector.
    pub fn new(party: Party) -> Self {
        PartyView {
            party,
            events: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Total bytes observed, split `(sent, received)`.
    pub fn byte_totals(&self) -> (u64, u64) {
        let mut sent = 0;
        let mut received = 0;
        for e in &self.events {
            if e.sent {
                sent += e.bytes;
            } else {
                received += e.bytes;
            }
        }
        (sent, received)
    }

    /// Per-label byte totals in first-use order.
    pub fn bytes_by_label(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for e in &self.events {
            match out.iter_mut().find(|(l, _)| *l == e.label) {
                Some((_, b)) => *b += e.bytes,
                None => out.push((e.label.clone(), e.bytes)),
            }
        }
        out
    }

    /// The canonical `spfe-view/v1` serialization the fingerprint hashes.
    ///
    /// Injective by construction: every variable-length field is length-
    /// prefixed and every section is count-prefixed, so distinct views
    /// serialize to distinct byte strings.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.events.len() * 24);
        out.extend_from_slice(VIEW_SCHEMA.as_bytes());
        out.push(0);
        match self.party {
            Party::Client => out.push(0xC1),
            Party::Server(i) => {
                out.push(0x51);
                out.extend_from_slice(&(i as u64).to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for e in &self.events {
            out.extend_from_slice(&e.half_round.to_le_bytes());
            out.push(e.sent as u8);
            out.extend_from_slice(&(e.label.len() as u64).to_le_bytes());
            out.extend_from_slice(e.label.as_bytes());
            out.extend_from_slice(&e.bytes.to_le_bytes());
        }
        out.extend_from_slice(&(self.ops.len() as u64).to_le_bytes());
        for (name, count) in &self.ops {
            out.extend_from_slice(&(name.len() as u64).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&count.to_le_bytes());
        }
        out
    }

    /// SHA-256 of [`PartyView::canonical_bytes`].
    pub fn fingerprint(&self) -> [u8; 32] {
        sha256(&self.canonical_bytes())
    }

    /// The fingerprint as lowercase hex (the form reports and baselines
    /// store).
    pub fn fingerprint_hex(&self) -> String {
        to_hex(&self.fingerprint())
    }
}

/// Renders bytes as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// The session's deterministic op vector in the `(name, count)` form
/// [`PartyView::ops`] stores: nonzero deterministic counters only, in
/// [`crate::Op::ALL`] order.
pub fn deterministic_ops(snapshot: &crate::OpsSnapshot) -> Vec<(String, u64)> {
    snapshot
        .deterministic_part()
        .nonzero()
        .map(|(op, c)| (op.name().to_owned(), c))
        .collect()
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4). `spfe-obs` is a dependency-free leaf crate, so it
// carries its own compact implementation rather than pulling in
// `spfe-crypto` (which depends on this crate).
// ---------------------------------------------------------------------------

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 of `data` (one-shot).
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());
    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(word.try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }
    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(half_round: u32, sent: bool, label: &str, bytes: u64) -> ViewEvent {
        ViewEvent {
            half_round,
            sent,
            label: label.to_owned(),
            bytes,
        }
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Exercise the multi-block path (> 64 bytes).
        assert_eq!(
            to_hex(&sha256(&[0x61u8; 100])),
            "2816597888e4a0d3a36b82b83316ab32680eb8f00f8cd3b904d681246d285a0e"
        );
    }

    #[test]
    fn identical_views_fingerprint_identically() {
        let mk = || {
            let mut v = PartyView::new(Party::Server(1));
            v.events = vec![ev(1, false, "q", 128), ev(2, true, "a", 256)];
            v
        };
        assert_eq!(mk().fingerprint(), mk().fingerprint());
        assert_eq!(mk().fingerprint_hex().len(), 64);
    }

    #[test]
    fn any_single_field_change_changes_the_fingerprint() {
        let base = {
            let mut v = PartyView::new(Party::Client);
            v.events = vec![ev(1, true, "q", 128), ev(2, false, "a", 256)];
            v.ops = vec![("modexp".to_owned(), 7)];
            v
        };
        let fp = base.fingerprint();
        let mut label = base.clone();
        label.events[0].label = "qq".to_owned();
        assert_ne!(label.fingerprint(), fp);
        let mut bytes = base.clone();
        bytes.events[1].bytes += 1;
        assert_ne!(bytes.fingerprint(), fp);
        let mut dir = base.clone();
        dir.events[0].sent = false;
        assert_ne!(dir.fingerprint(), fp);
        let mut round = base.clone();
        round.events[1].half_round = 3;
        assert_ne!(round.fingerprint(), fp);
        let mut party = base.clone();
        party.party = Party::Server(0);
        assert_ne!(party.fingerprint(), fp);
        let mut ops = base.clone();
        ops.ops[0].1 = 8;
        assert_ne!(ops.fingerprint(), fp);
    }

    #[test]
    fn event_order_is_part_of_the_fingerprint() {
        let mut a = PartyView::new(Party::Client);
        a.events = vec![ev(1, true, "q", 8), ev(1, true, "r", 8)];
        let mut b = PartyView::new(Party::Client);
        b.events = vec![ev(1, true, "r", 8), ev(1, true, "q", 8)];
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn canonical_serialization_has_no_framing_ambiguity() {
        // One event labeled "ab" vs one labeled "a" followed by junk that
        // could alias it under a non-length-prefixed layout.
        let mut a = PartyView::new(Party::Client);
        a.events = vec![ev(0, true, "ab", 1)];
        let mut b = PartyView::new(Party::Client);
        b.events = vec![ev(0, true, "a", 1), ev(0, true, "b", 1)];
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // An op vector entry is not confusable with an event either.
        let mut c = PartyView::new(Party::Client);
        c.ops = vec![("x".to_owned(), 1)];
        let mut d = PartyView::new(Party::Client);
        d.events = vec![ev(0, false, "x", 1)];
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn byte_totals_and_labels_attribute_by_direction_and_first_use() {
        let mut v = PartyView::new(Party::Server(0));
        v.events = vec![
            ev(1, false, "q", 100),
            ev(2, true, "a", 40),
            ev(3, false, "q", 28),
        ];
        assert_eq!(v.byte_totals(), (40, 128));
        assert_eq!(
            v.bytes_by_label(),
            vec![("q".to_owned(), 128), ("a".to_owned(), 40)]
        );
    }

    #[test]
    fn party_names_are_stable() {
        assert_eq!(Party::Client.name(), "client");
        assert_eq!(Party::Server(0).name(), "server0");
        assert_eq!(Party::Server(11).name(), "server11");
    }
}
