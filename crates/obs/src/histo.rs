//! Log-bucketed latency histograms.
//!
//! Span aggregates keep, besides the running total, a 65-bucket base-2
//! histogram of per-call durations: bucket `b` counts values whose bit
//! length is `b` (value 0 lands in bucket 0, `u64::MAX` in bucket 64).
//! Quantiles are answered as the *upper bound* of the bucket holding the
//! requested rank — a conservative estimate with at most 2× relative
//! error, which is plenty to tell a 1 µs phase from a 1 ms phase and
//! costs 520 bytes per span path instead of storing every sample.

/// Number of buckets: one per possible bit length of a `u64`, plus zero.
pub const NUM_BUCKETS: usize = 65;

/// A base-2 log-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histo {
    counts: [u64; NUM_BUCKETS],
}

impl Default for Histo {
    fn default() -> Self {
        Histo {
            counts: [0; NUM_BUCKETS],
        }
    }
}

/// The bucket index for `value`: its bit length (0 for 0).
fn bucket(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `b` can hold (`2^b - 1`; bucket 0 holds only 0).
fn bucket_max(b: usize) -> u64 {
    if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histo {
    /// An empty histogram.
    pub fn new() -> Self {
        Histo::default()
    }

    /// Records one sample (saturating: a bucket pinned at `u64::MAX` stays
    /// there rather than wrapping).
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples at once.
    pub fn record_n(&mut self, value: u64, n: u64) {
        let b = bucket(value);
        self.counts[b] = self.counts[b].saturating_add(n);
    }

    /// Folds another histogram into this one (saturating per bucket).
    pub fn merge(&mut self, other: &Histo) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
    }

    /// Total recorded samples (saturating).
    pub fn count(&self) -> u64 {
        self.counts
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// The value at quantile `q ∈ [0, 1]`, reported as the upper bound of
    /// the bucket containing that rank. Empty histograms answer 0.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // Rank of the requested sample, 1-based, clamped into [1, total].
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_max(b);
            }
        }
        u64::MAX
    }

    /// Median (upper-bound estimate).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (upper-bound estimate).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (upper-bound estimate).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// `(bucket upper bound, count)` for every nonzero bucket, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (bucket_max(b), c))
    }
}

/// The full, stable ladder of bucket upper bounds, ascending: `2^b - 1`
/// for every bucket index, ending at `u64::MAX`. Scrape pipelines that
/// need a schedule-independent bucket schema (the Prometheus exposition
/// emits one cumulative series per bound, occupied or not) iterate this
/// instead of [`Histo::nonzero_buckets`].
pub fn bucket_bounds() -> impl Iterator<Item = u64> {
    (0..NUM_BUCKETS).map(bucket_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(u64::MAX), 64);
        assert_eq!(bucket_max(0), 0);
        assert_eq!(bucket_max(1), 1);
        assert_eq!(bucket_max(2), 3);
        assert_eq!(bucket_max(64), u64::MAX);
    }

    #[test]
    fn zero_duration_spans_report_zero_quantiles() {
        // A span cheaper than the clock tick records 0 ns; the histogram
        // must answer 0 for every quantile, not inflate to a bucket bound.
        let mut h = Histo::new();
        for _ in 0..10 {
            h.record(0);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p95(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = Histo::new();
        h.record(700);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            assert_eq!(v, 1023, "q={q}: one sample fills every rank");
            assert!(v >= 700, "upper bound covers the sample");
        }
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Histo::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn saturating_counts_never_wrap() {
        let mut h = Histo::new();
        h.record_n(5, u64::MAX);
        h.record(5);
        h.record_n(5, u64::MAX);
        assert_eq!(h.count(), u64::MAX, "bucket and total both saturate");
        assert_eq!(h.p50(), 7, "quantiles still answer the 5-bucket bound");
        let mut other = Histo::new();
        other.record_n(5, u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), u64::MAX);
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let mut h = Histo::new();
        // 90 fast samples (~100 ns), 10 slow ones (~1 ms).
        h.record_n(100, 90);
        h.record_n(1_000_000, 10);
        assert_eq!(h.p50(), bucket_max(bucket(100)));
        assert_eq!(h.p95(), bucket_max(bucket(1_000_000)));
        assert_eq!(h.p99(), bucket_max(bucket(1_000_000)));
        assert!(h.p50() < h.p95());
    }

    #[test]
    fn merge_adds_distributions() {
        let mut a = Histo::new();
        a.record_n(10, 4);
        let mut b = Histo::new();
        b.record_n(1_000, 4);
        a.merge(&b);
        assert_eq!(a.count(), 8);
        assert_eq!(a.p50(), bucket_max(bucket(10)));
        assert_eq!(a.p99(), bucket_max(bucket(1_000)));
    }

    #[test]
    fn bucket_bounds_ladder_is_stable_and_ascending() {
        let bounds: Vec<u64> = bucket_bounds().collect();
        assert_eq!(bounds.len(), NUM_BUCKETS);
        assert_eq!(bounds[0], 0);
        assert_eq!(bounds[1], 1);
        assert_eq!(bounds[10], 1023);
        assert_eq!(bounds[64], u64::MAX);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        // Every nonzero bucket bound is drawn from the ladder.
        let mut h = Histo::new();
        h.record(700);
        h.record(0);
        for (le, _) in h.nonzero_buckets() {
            assert!(bounds.contains(&le));
        }
    }

    #[test]
    fn nonzero_buckets_enumerate() {
        let mut h = Histo::new();
        h.record(0);
        h.record(6);
        h.record(6);
        let got: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(got, vec![(0, 1), (7, 2)]);
    }
}
