//! Span-attributed heap telemetry: a counting `#[global_allocator]`.
//!
//! The paper's cost model counts communication and modexps, but the
//! reproduction's practical ceiling at large `n` is server-side memory —
//! PIR scans, garbled tables and recursion buffers all allocate Ω(n).
//! With the `obs-alloc` feature this module installs a wrapper around
//! [`std::alloc::System`] that tallies every allocation and attributes
//! deltas to the currently open [`crate::span`], exactly the way op
//! counters already do. Without the feature every probe compiles to a
//! no-op and the process keeps the plain system allocator.
//!
//! Counters kept (see [`MemStat`]):
//!
//! * `allocs` / `alloc_bytes` — allocation count and bytes requested;
//! * `free_bytes` / `reallocs` — bytes returned and reallocation count;
//! * `live_bytes` — current global live-heap gauge (never reset);
//! * `peak_live_bytes` — high-water mark of `live_bytes` since the last
//!   [`reset_mem`].
//!
//! **Determinism contract** (mirrors [`crate::Op::deterministic`]): at
//! `SPFE_THREADS=1`, `allocs` and `alloc_bytes` are pure functions of the
//! protocol run — bit-identical across reruns *and across fault seeds*,
//! because the fault-injecting transport excludes its own
//! schedule-dependent delivery buffers via [`pause`]. The gauges
//! (`live_bytes`, `peak_live_bytes`, and `free_bytes`, whose pairing with
//! paused allocations cannot be tracked) are reported but never gated.
//!
//! **Reentrancy**: the allocator hook may run before `main`, during TLS
//! teardown, and inside any allocation the instrumentation itself makes.
//! It therefore touches only one const-initialised `Cell` record in TLS
//! (no destructor registration, no allocation); during teardown it falls
//! back to updating the global gauge directly. The span frame stack,
//! which does allocate, is managed exclusively by
//! [`frame_open`]/[`frame_close`] — called from span guards, never from
//! the hook.
//!
//! **Hot-path budget**: the hook itself performs no atomic operations —
//! it bumps two or three plain `Cell` counters behind a single TLS
//! lookup and flushes them to the global shards/gauge when a weighted
//! budget runs out (≈ every 64 small hook events or 8 KiB of heap
//! traffic, whichever first, so large buffers surface in the gauge right
//! away). Flushes are forced at span frame boundaries, [`snapshot`] and
//! [`reset_mem`], so single-thread measurement windows read *exact*
//! totals; concurrently running threads can lag the global totals by at
//! most one batch each (and a thread that exits between flushes strands
//! its last partial batch — bounded, and irrelevant to the gated
//! single-thread regime).

/// Process-wide heap counters over one measurement window.
///
/// All fields are totals since the last [`reset_mem`], except
/// `live_bytes` (an absolute gauge) and `peak_live_bytes` (the maximum
/// the gauge reached during the window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStat {
    /// Number of allocations (`alloc` + `alloc_zeroed`; reallocs excluded).
    pub allocs: u64,
    /// Bytes requested by allocations, plus realloc growth.
    pub alloc_bytes: u64,
    /// Bytes returned by deallocations, plus realloc shrinkage.
    pub free_bytes: u64,
    /// Number of reallocations.
    pub reallocs: u64,
    /// Current live heap bytes (global gauge, survives [`reset_mem`]).
    pub live_bytes: u64,
    /// Maximum of `live_bytes` since the last [`reset_mem`].
    pub peak_live_bytes: u64,
}

/// Per-span heap delta produced by [`frame_close`]: the *self* allocation
/// tally of one span occurrence plus the live-heap peak observed while it
/// (or any child) was open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemDelta {
    /// Allocations attributed to the span itself (children excluded).
    pub allocs: u64,
    /// Allocated bytes attributed to the span itself (children excluded).
    pub alloc_bytes: u64,
    /// Live-heap high-water mark while the span was open (children
    /// *included* — peaks do not decompose into self parts).
    pub peak_live_bytes: u64,
}

/// Trace label for span-attributed allocation-count deltas.
pub const ALLOCS_LABEL: &str = "allocs";
/// Trace label for span-attributed allocated-byte deltas.
pub const ALLOC_BYTES_LABEL: &str = "alloc_bytes";

/// Whether the counting allocator is compiled in (the `obs-alloc`
/// feature). With it off, [`snapshot`] returns zeros and the process uses
/// the plain system allocator.
pub const fn alloc_enabled() -> bool {
    cfg!(feature = "obs-alloc")
}

/// Suspends the deterministic tallies (`allocs`, `alloc_bytes`,
/// `reallocs`, `free_bytes`) on the calling thread until the guard drops.
///
/// The live/peak gauges keep tracking — they must see every allocation or
/// later frees would underflow the live count. The fault-injecting
/// transport wraps its delivery path in this guard so fault-schedule-
/// dependent buffer copies never break the bit-identical-across-seeds
/// contract (DESIGN.md §12). Nests; safe to call with the feature off.
#[must_use = "the pause lasts until the guard drops"]
pub fn pause() -> PauseGuard {
    imp::pause_inc();
    PauseGuard { _priv: () }
}

/// RAII guard returned by [`pause`].
pub struct PauseGuard {
    _priv: (),
}

impl Drop for PauseGuard {
    fn drop(&mut self) {
        imp::pause_dec();
    }
}

/// Current process-wide heap counters (zeros without `obs-alloc`).
pub fn snapshot() -> MemStat {
    imp::snapshot()
}

/// Starts a new measurement window: zeroes the windowed tallies and
/// resets the peak to the current live gauge. The live gauge itself is
/// never reset (it tracks real outstanding bytes).
pub fn reset_mem() {
    imp::reset_mem()
}

/// Opens an attribution frame for a span on this thread. Called by the
/// span guard; pairs with [`frame_close`].
#[cfg(feature = "obs")]
pub(crate) fn frame_open() {
    imp::frame_open()
}

/// Closes the innermost attribution frame and returns the span's heap
/// delta (zeros if no frame is open or the feature is off).
#[cfg(feature = "obs")]
pub(crate) fn frame_close() -> MemDelta {
    imp::frame_close()
}

#[cfg(feature = "obs-alloc")]
mod imp {
    use super::{MemDelta, MemStat};
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::{Cell, RefCell};
    use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering::Relaxed};

    const NUM_SHARDS: usize = 32;
    /// Weighted flush budget: every hook event costs `1 + size/128`, and
    /// a flush happens when the budget runs out — i.e. after ≈64 small
    /// events or ≈8 KiB of heap traffic, whichever comes first, so one
    /// large buffer shows up in the gauge right away.
    const FLUSH_BUDGET: i32 = 64;

    /// One cache line of windowed tallies; threads are spread round-robin
    /// so concurrent *flushes* rarely contend on a line (same scheme as
    /// the op-counter shards).
    #[repr(align(64))]
    struct Shard {
        allocs: AtomicU64,
        alloc_bytes: AtomicU64,
        free_bytes: AtomicU64,
        reallocs: AtomicU64,
    }

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO_SHARD: Shard = Shard {
        allocs: AtomicU64::new(0),
        alloc_bytes: AtomicU64::new(0),
        free_bytes: AtomicU64::new(0),
        reallocs: AtomicU64::new(0),
    };

    static SHARDS: [Shard; NUM_SHARDS] = [ZERO_SHARD; NUM_SHARDS];
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    /// Live-heap gauge, updated at flush points. Signed: cross-thread
    /// frees can transiently outrun the matching allocations' flush, so
    /// the gauge may dip below zero mid-flight; readers clamp at 0.
    static LIVE: AtomicI64 = AtomicI64::new(0);
    /// High-water mark of `LIVE` since the last `reset_mem`.
    static PEAK: AtomicU64 = AtomicU64::new(0);

    /// All of a thread's allocator state in one record: the hook pays
    /// for exactly one TLS lookup per call, and everything behind it is
    /// a plain `Cell` operation — no atomics on the hot path. Every
    /// counter is *monotone*; flushes publish the delta since the last
    /// flush (the `f_*` snapshots) instead of maintaining separate
    /// pending cells, which keeps the per-event work to two or three
    /// increments. Hot fields first so the common path stays on one
    /// cache line.
    #[repr(align(64))]
    struct ThreadMem {
        /// Unpaused allocation count (monotone). Frames subtract start
        /// snapshots, so a global `reset_mem` from another thread cannot
        /// skew an open span.
        allocs: Cell<u64>,
        /// Unpaused allocated bytes, incl. realloc growth (monotone).
        alloc_bytes: Cell<u64>,
        /// Unpaused freed bytes, incl. realloc shrinkage (monotone).
        free_bytes: Cell<u64>,
        /// Alloc/free bytes seen while paused (monotone) — excluded from
        /// the tallies, but the live gauge must still see them.
        paused_up: Cell<u64>,
        paused_down: Cell<u64>,
        /// Unpaused reallocation count (monotone).
        reallocs: Cell<u64>,
        /// Remaining weighted flush budget (see [`FLUSH_BUDGET`]).
        budget: Cell<i32>,
        /// Pause depth (see [`super::pause`]).
        paused: Cell<u32>,
        /// This thread's view of the live-heap high-water mark, rebased
        /// by `frame_open` so each span sees a peak relative to its own
        /// window. Advances only at flush points.
        live_max: Cell<u64>,
        // -- cold: flush bookkeeping only --
        f_allocs: Cell<u64>,
        f_alloc_bytes: Cell<u64>,
        f_free_bytes: Cell<u64>,
        f_paused_up: Cell<u64>,
        f_paused_down: Cell<u64>,
        f_reallocs: Cell<u64>,
        /// This thread's shard index; `usize::MAX` = not yet assigned.
        shard: Cell<usize>,
    }

    impl ThreadMem {
        const fn new() -> ThreadMem {
            ThreadMem {
                allocs: Cell::new(0),
                alloc_bytes: Cell::new(0),
                free_bytes: Cell::new(0),
                paused_up: Cell::new(0),
                paused_down: Cell::new(0),
                reallocs: Cell::new(0),
                budget: Cell::new(FLUSH_BUDGET),
                paused: Cell::new(0),
                live_max: Cell::new(0),
                f_allocs: Cell::new(0),
                f_alloc_bytes: Cell::new(0),
                f_free_bytes: Cell::new(0),
                f_paused_up: Cell::new(0),
                f_paused_down: Cell::new(0),
                f_reallocs: Cell::new(0),
                shard: Cell::new(usize::MAX),
            }
        }

        /// Charges one hook event against the flush budget.
        #[inline]
        fn charge(&self, size: u64) {
            let b = self.budget.get() - ((size >> 7).min(1 << 20) as i32 + 1);
            if b <= 0 {
                self.flush();
            } else {
                self.budget.set(b);
            }
        }

        /// Publishes the deltas since the last flush to the global
        /// shards and gauge. Never allocates and never panics, so it is
        /// safe inside the hook.
        #[inline(never)]
        fn flush(&self) {
            self.budget.set(FLUSH_BUDGET);
            let idx = {
                let s = self.shard.get();
                if s != usize::MAX {
                    s
                } else {
                    let s = NEXT_SHARD.fetch_add(1, Relaxed) % NUM_SHARDS;
                    self.shard.set(s);
                    s
                }
            };
            let sh = &SHARDS[idx];
            // Delta of a monotone counter since the last flush; advances
            // the snapshot.
            let delta = |c: &Cell<u64>, f: &Cell<u64>| {
                let d = c.get().wrapping_sub(f.get());
                f.set(c.get());
                d
            };
            let d_allocs = delta(&self.allocs, &self.f_allocs);
            if d_allocs > 0 {
                sh.allocs.fetch_add(d_allocs, Relaxed);
            }
            let d_up = delta(&self.alloc_bytes, &self.f_alloc_bytes);
            if d_up > 0 {
                sh.alloc_bytes.fetch_add(d_up, Relaxed);
            }
            let d_down = delta(&self.free_bytes, &self.f_free_bytes);
            if d_down > 0 {
                sh.free_bytes.fetch_add(d_down, Relaxed);
            }
            let d_reallocs = delta(&self.reallocs, &self.f_reallocs);
            if d_reallocs > 0 {
                sh.reallocs.fetch_add(d_reallocs, Relaxed);
            }
            let d_pu = delta(&self.paused_up, &self.f_paused_up);
            let d_pd = delta(&self.paused_down, &self.f_paused_down);
            let dl = (d_up.wrapping_add(d_pu) as i64) - (d_down.wrapping_add(d_pd) as i64);
            let live = if dl != 0 {
                LIVE.fetch_add(dl, Relaxed) + dl
            } else {
                LIVE.load(Relaxed)
            };
            let live = live.max(0) as u64;
            if live > self.live_max.get() {
                self.live_max.set(live);
            }
            if live > PEAK.load(Relaxed) {
                PEAK.fetch_max(live, Relaxed);
            }
        }
    }

    thread_local! {
        /// Const-initialised so the first hook on a thread never
        /// allocates and never registers a destructor.
        static TM: ThreadMem = const { ThreadMem::new() };
    }

    /// Gauge fallback for hooks that run during TLS teardown, when the
    /// thread's record is gone: tallies are dropped (teardown-time
    /// allocations are exactly the scheduling noise the deterministic
    /// counters exclude), but the gauge must still see the delta or
    /// later frees would skew it.
    #[inline(never)]
    fn gauge_direct(delta: i64) {
        let live = (LIVE.fetch_add(delta, Relaxed) + delta).max(0) as u64;
        if live > PEAK.load(Relaxed) {
            PEAK.fetch_max(live, Relaxed);
        }
    }

    #[inline]
    fn on_alloc(size: u64) {
        let r = TM.try_with(|t| {
            if t.paused.get() == 0 {
                t.allocs.set(t.allocs.get().wrapping_add(1));
                t.alloc_bytes.set(t.alloc_bytes.get().wrapping_add(size));
            } else {
                t.paused_up.set(t.paused_up.get().wrapping_add(size));
            }
            t.charge(size);
        });
        if r.is_err() {
            gauge_direct(size as i64);
        }
    }

    #[inline]
    fn on_free(size: u64) {
        let r = TM.try_with(|t| {
            if t.paused.get() == 0 {
                t.free_bytes.set(t.free_bytes.get().wrapping_add(size));
            } else {
                t.paused_down.set(t.paused_down.get().wrapping_add(size));
            }
            t.charge(size);
        });
        if r.is_err() {
            gauge_direct(-(size as i64));
        }
    }

    #[inline]
    fn on_realloc(old: u64, new: u64) {
        let r = TM.try_with(|t| {
            if t.paused.get() == 0 {
                t.reallocs.set(t.reallocs.get().wrapping_add(1));
                if new >= old {
                    t.alloc_bytes
                        .set(t.alloc_bytes.get().wrapping_add(new - old));
                } else {
                    t.free_bytes.set(t.free_bytes.get().wrapping_add(old - new));
                }
            } else if new >= old {
                t.paused_up.set(t.paused_up.get().wrapping_add(new - old));
            } else {
                t.paused_down
                    .set(t.paused_down.get().wrapping_add(old - new));
            }
            t.charge(new.abs_diff(old));
        });
        if r.is_err() {
            gauge_direct(new as i64 - old as i64);
        }
    }

    /// The counting wrapper around the system allocator.
    pub struct CountingAlloc;

    // SAFETY: every method delegates verbatim to `System`, which upholds
    // the `GlobalAlloc` contract; the bookkeeping around the calls never
    // allocates (const-init `Cell` TLS + relaxed atomics only) and never
    // panics, so the hook cannot recurse or unwind into the allocator.
    unsafe impl GlobalAlloc for CountingAlloc {
        #[inline]
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        #[inline]
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc_zeroed(layout) };
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        #[inline]
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            on_free(layout.size() as u64);
        }

        #[inline]
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                on_realloc(layout.size() as u64, new_size as u64);
            }
            p
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    pub fn pause_inc() {
        let _ = TM.try_with(|t| t.paused.set(t.paused.get().saturating_add(1)));
    }

    pub fn pause_dec() {
        let _ = TM.try_with(|t| t.paused.set(t.paused.get().saturating_sub(1)));
    }

    pub fn snapshot() -> MemStat {
        // The calling thread's pending batch is published first, so a
        // single-threaded measurement window reads exact totals.
        let _ = TM.try_with(ThreadMem::flush);
        let mut s = MemStat::default();
        for sh in &SHARDS {
            s.allocs += sh.allocs.load(Relaxed);
            s.alloc_bytes += sh.alloc_bytes.load(Relaxed);
            s.free_bytes += sh.free_bytes.load(Relaxed);
            s.reallocs += sh.reallocs.load(Relaxed);
        }
        s.live_bytes = LIVE.load(Relaxed).max(0) as u64;
        s.peak_live_bytes = PEAK.load(Relaxed);
        s
    }

    pub fn reset_mem() {
        // Flush before zeroing: the calling thread's pre-window pendings
        // land in the *old* window instead of leaking into the new one.
        let _ = TM.try_with(ThreadMem::flush);
        for sh in &SHARDS {
            sh.allocs.store(0, Relaxed);
            sh.alloc_bytes.store(0, Relaxed);
            sh.free_bytes.store(0, Relaxed);
            sh.reallocs.store(0, Relaxed);
        }
        // The new window's peak starts at the current footprint, so a
        // span that allocates nothing still reports a truthful gauge.
        PEAK.store(LIVE.load(Relaxed).max(0) as u64, Relaxed);
    }

    /// One open span's attribution state.
    #[derive(Default)]
    struct FrameRec {
        start_allocs: u64,
        start_bytes: u64,
        /// Totals closed children handed up, subtracted to get self.
        child_allocs: u64,
        child_bytes: u64,
        /// Parent's `T_LIVE_MAX` at open, restored (maxed) at close.
        saved_live_max: u64,
    }

    thread_local! {
        /// Attribution frames, innermost last. Only touched by
        /// `frame_open`/`frame_close` — never by the allocator hook — so
        /// its own `Vec` growth is safe (and counted like any other
        /// allocation on this thread).
        static FRAMES: RefCell<Vec<FrameRec>> = const { RefCell::new(Vec::new()) };
    }

    pub fn frame_open() {
        // The frame stack's own growth is instrumentation bookkeeping:
        // it happens only on first use per thread/depth, which would make
        // the first measured run differ from reruns. Pause around it.
        pause_inc();
        let rec = TM.with(|t| {
            // Flush so the frame's peak window starts from the real
            // current gauge, not a stale batch.
            t.flush();
            let live = LIVE.load(Relaxed).max(0) as u64;
            let saved = t.live_max.replace(live);
            FrameRec {
                start_allocs: t.allocs.get(),
                start_bytes: t.alloc_bytes.get(),
                child_allocs: 0,
                child_bytes: 0,
                saved_live_max: saved,
            }
        });
        FRAMES.with(|f| f.borrow_mut().push(rec));
        pause_dec();
    }

    pub fn frame_close() -> MemDelta {
        TM.with(|t| {
            // Publish the closing span's last partial batch so its peak
            // (and the global totals a snapshot may read next) are
            // current.
            t.flush();
            FRAMES.with(|f| {
                let mut frames = f.borrow_mut();
                let Some(rec) = frames.pop() else {
                    return MemDelta::default();
                };
                let total_allocs = t.allocs.get().wrapping_sub(rec.start_allocs);
                let total_bytes = t.alloc_bytes.get().wrapping_sub(rec.start_bytes);
                let peak = t.live_max.get();
                if let Some(parent) = frames.last_mut() {
                    parent.child_allocs = parent.child_allocs.saturating_add(total_allocs);
                    parent.child_bytes = parent.child_bytes.saturating_add(total_bytes);
                }
                t.live_max.set(rec.saved_live_max.max(peak));
                MemDelta {
                    allocs: total_allocs.saturating_sub(rec.child_allocs),
                    alloc_bytes: total_bytes.saturating_sub(rec.child_bytes),
                    peak_live_bytes: peak,
                }
            })
        })
    }
}

#[cfg(not(feature = "obs-alloc"))]
mod imp {
    use super::MemStat;

    #[inline(always)]
    pub fn pause_inc() {}

    #[inline(always)]
    pub fn pause_dec() {}

    pub fn snapshot() -> MemStat {
        MemStat::default()
    }

    pub fn reset_mem() {}

    #[cfg(feature = "obs")]
    #[inline(always)]
    pub fn frame_open() {}

    #[cfg(feature = "obs")]
    #[inline(always)]
    pub fn frame_close() -> super::MemDelta {
        super::MemDelta::default()
    }
}

#[cfg(all(test, feature = "obs-alloc"))]
mod tests {
    use super::*;

    /// Thread-local tallies are exact on the running thread; global
    /// shard totals are shared with concurrently running tests, so the
    /// assertions below compare per-thread or span-level deltas only.
    fn thread_delta(f: impl FnOnce()) -> MemDelta {
        frame_open();
        f();
        frame_close()
    }

    #[test]
    fn allocations_are_counted() {
        let d = thread_delta(|| {
            let v: Vec<u8> = Vec::with_capacity(4096);
            std::hint::black_box(&v);
        });
        assert!(d.allocs >= 1, "{d:?}");
        assert!(d.alloc_bytes >= 4096, "{d:?}");
        assert!(d.peak_live_bytes > 0, "{d:?}");
    }

    #[test]
    fn nested_frames_split_self_from_children() {
        frame_open();
        let a: Vec<u8> = Vec::with_capacity(1000);
        let inner = thread_delta(|| {
            let b: Vec<u8> = Vec::with_capacity(3000);
            std::hint::black_box(&b);
        });
        std::hint::black_box(&a);
        let outer = frame_close();
        assert!(inner.alloc_bytes >= 3000, "{inner:?}");
        assert!(outer.alloc_bytes >= 1000, "{outer:?}");
        // The inner 3000-byte buffer is a child of the outer frame: self
        // bytes exclude it.
        assert!(
            outer.alloc_bytes < 3000 + 1000,
            "outer self includes child: {outer:?}"
        );
        // The peak is inclusive: the outer span saw at least the inner
        // high-water mark.
        assert!(outer.peak_live_bytes >= inner.peak_live_bytes, "{outer:?}");
    }

    #[test]
    fn pause_excludes_tallies_but_keeps_the_gauge() {
        let d = thread_delta(|| {
            let _p = pause();
            let v: Vec<u8> = Vec::with_capacity(8192);
            std::hint::black_box(&v);
        });
        assert_eq!(d.allocs, 0, "{d:?}");
        assert_eq!(d.alloc_bytes, 0, "{d:?}");
        // The gauge still tracked the paused allocation.
        assert!(d.peak_live_bytes >= 8192, "{d:?}");
    }

    #[test]
    fn pause_nests() {
        let d = thread_delta(|| {
            let p1 = pause();
            let p2 = pause();
            drop(p2);
            let v: Vec<u8> = Vec::with_capacity(512);
            std::hint::black_box(&v);
            drop(p1);
            let w: Vec<u8> = Vec::with_capacity(256);
            std::hint::black_box(&w);
        });
        assert!(d.alloc_bytes >= 256, "{d:?}");
        assert!(d.alloc_bytes < 512, "paused alloc tallied: {d:?}");
    }

    #[test]
    fn snapshot_sees_global_totals_and_live_gauge() {
        // Holds the crate-wide guard: other obs tests call the global
        // reset, which would zero the windowed tallies mid-assertion.
        let _g = crate::test_guard();
        let before = snapshot();
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        std::hint::black_box(&v);
        let after = snapshot();
        assert!(after.allocs > before.allocs);
        assert!(after.alloc_bytes >= before.alloc_bytes + (1 << 16));
        assert!(after.live_bytes > 0);
        drop(v);
        let freed = snapshot();
        assert!(freed.free_bytes >= after.free_bytes + (1 << 16));
    }

    #[test]
    fn per_thread_counters_are_deterministic_for_a_fixed_workload() {
        let run = || {
            thread_delta(|| {
                let mut total = 0u64;
                for i in 1..64u64 {
                    let v: Vec<u64> = (0..i).collect();
                    total = total.wrapping_add(v.iter().sum::<u64>());
                }
                std::hint::black_box(total);
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.allocs, b.allocs);
        assert_eq!(a.alloc_bytes, b.alloc_bytes);
        assert!(a.allocs >= 63, "{a:?}");
    }

    #[test]
    fn worker_threads_feed_the_global_totals() {
        let _g = crate::test_guard();
        let before = snapshot();
        std::thread::scope(|s| {
            s.spawn(|| {
                let v: Vec<u8> = Vec::with_capacity(1 << 14);
                std::hint::black_box(&v);
            });
        });
        let after = snapshot();
        assert!(after.alloc_bytes >= before.alloc_bytes + (1 << 14));
    }
}
