//! The unified cost report: spans + op counters + communication + heap.
//!
//! One [`CostReport`] describes one measured protocol execution; a suite
//! of them renders to the `spfe-cost-report/v3` JSON schema (what
//! `spfe-tables --json` writes to `BENCH_costs.json`) or to Markdown for
//! humans. v2 added per-span latency quantiles; v3 added the heap axis
//! (span-attributed `allocs`/`alloc_bytes`/`peak_live_bytes` plus a
//! report-level [`MemStat`], populated when built with `obs-alloc` and
//! zero otherwise). `v1`/`v2` files are still readable via
//! [`crate::suite::parse_suite`].

use crate::counter::{Op, OpsSnapshot};
use crate::json::escape;
use crate::mem::MemStat;
use crate::span::SpanStat;

/// Per-label × per-direction communication attribution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LabelStat {
    /// The transcript message label (e.g. `"pir-query"`).
    pub label: String,
    /// Client→server bytes under this label.
    pub up_bytes: u64,
    /// Client→server messages under this label.
    pub up_msgs: u64,
    /// Server→client bytes under this label.
    pub down_bytes: u64,
    /// Server→client messages under this label.
    pub down_msgs: u64,
}

/// Communication totals for one execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommStat {
    /// Total client→server bytes.
    pub up_bytes: u64,
    /// Total server→client bytes.
    pub down_bytes: u64,
    /// Total messages metered.
    pub messages: u64,
    /// Direction flips (2 half-rounds = 1 round).
    pub half_rounds: u32,
    /// Per-label breakdown, in first-use order.
    pub labels: Vec<LabelStat>,
}

/// One op counter in a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpStat {
    /// Which operation.
    pub op: Op,
    /// How many.
    pub count: u64,
}

/// Spans + ops + communication for one measured protocol execution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostReport {
    /// Experiment id (e.g. `"e1"`).
    pub experiment: String,
    /// Protocol variant within the experiment (e.g. `"select1-gm"`).
    pub protocol: String,
    /// End-to-end wall-clock nanoseconds.
    pub elapsed_ns: u64,
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Nonzero op counters, in [`Op`] order.
    pub ops: Vec<OpStat>,
    /// Communication totals and per-label attribution.
    pub comm: CommStat,
    /// Process-wide heap counters over the measurement window (zeros
    /// unless built with `obs-alloc`, see [`crate::mem`]).
    pub mem: MemStat,
}

impl CostReport {
    /// Assembles a report from the global instrumentation state captured
    /// over a measurement window (the caller resets before and snapshots
    /// after) plus the communication stats from the transcript.
    pub fn assemble(
        experiment: &str,
        protocol: &str,
        elapsed_ns: u64,
        spans: Vec<SpanStat>,
        ops: &OpsSnapshot,
        comm: CommStat,
        mem: MemStat,
    ) -> CostReport {
        CostReport {
            experiment: experiment.to_owned(),
            protocol: protocol.to_owned(),
            elapsed_ns,
            spans,
            ops: ops
                .nonzero()
                .map(|(op, count)| OpStat { op, count })
                .collect(),
            comm,
            mem,
        }
    }

    /// The count recorded for `op` (0 when absent).
    pub fn op_count(&self, op: Op) -> u64 {
        self.ops.iter().find(|s| s.op == op).map_or(0, |s| s.count)
    }

    /// Renders this report as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"experiment\":\"{}\",\"protocol\":\"{}\",\"elapsed_ns\":{},",
            escape(&self.experiment),
            escape(&self.protocol),
            self.elapsed_ns
        ));
        out.push_str("\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":\"{}\",\"calls\":{},\"ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"allocs\":{},\"alloc_bytes\":{},\"peak_live_bytes\":{}}}",
                escape(&s.path),
                s.calls,
                s.ns,
                s.p50_ns,
                s.p95_ns,
                s.p99_ns,
                s.allocs,
                s.alloc_bytes,
                s.peak_live_bytes
            ));
        }
        out.push_str("],\"ops\":[");
        for (i, s) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"count\":{},\"deterministic\":{}}}",
                s.op.name(),
                s.count,
                s.op.deterministic()
            ));
        }
        out.push_str(&format!(
            "],\"comm\":{{\"up_bytes\":{},\"down_bytes\":{},\"messages\":{},\"half_rounds\":{},\"labels\":[",
            self.comm.up_bytes, self.comm.down_bytes, self.comm.messages, self.comm.half_rounds
        ));
        for (i, l) in self.comm.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":\"{}\",\"up_bytes\":{},\"up_msgs\":{},\"down_bytes\":{},\"down_msgs\":{}}}",
                escape(&l.label),
                l.up_bytes,
                l.up_msgs,
                l.down_bytes,
                l.down_msgs
            ));
        }
        out.push_str("]},");
        out.push_str(&format!(
            "\"mem\":{{\"allocs\":{},\"alloc_bytes\":{},\"free_bytes\":{},\"reallocs\":{},\"live_bytes\":{},\"peak_live_bytes\":{}}}}}",
            self.mem.allocs,
            self.mem.alloc_bytes,
            self.mem.free_bytes,
            self.mem.reallocs,
            self.mem.live_bytes,
            self.mem.peak_live_bytes
        ));
        out
    }

    /// Renders this report as a Markdown section.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "### {} · {}\n\nwall time: {:.3} ms · comm: {} B up / {} B down · rounds: {}\n",
            self.experiment,
            self.protocol,
            self.elapsed_ns as f64 / 1e6,
            self.comm.up_bytes,
            self.comm.down_bytes,
            self.comm.half_rounds.div_ceil(2),
        ));
        if self.mem.allocs > 0 {
            out.push_str(&format!(
                "heap: {} allocs / {} B · peak live: {} B\n",
                self.mem.allocs, self.mem.alloc_bytes, self.mem.peak_live_bytes
            ));
        }
        let with_heap = self.spans.iter().any(|s| s.alloc_bytes > 0);
        if !self.spans.is_empty() {
            if with_heap {
                out.push_str(
                    "\n| span | calls | total ms | allocs | alloc B | peak live B |\n|---|---:|---:|---:|---:|---:|\n",
                );
            } else {
                out.push_str("\n| span | calls | total ms |\n|---|---:|---:|\n");
            }
            for s in &self.spans {
                if with_heap {
                    out.push_str(&format!(
                        "| `{}` | {} | {:.3} | {} | {} | {} |\n",
                        s.path,
                        s.calls,
                        s.ns as f64 / 1e6,
                        s.allocs,
                        s.alloc_bytes,
                        s.peak_live_bytes
                    ));
                } else {
                    out.push_str(&format!(
                        "| `{}` | {} | {:.3} |\n",
                        s.path,
                        s.calls,
                        s.ns as f64 / 1e6
                    ));
                }
            }
        }
        if !self.ops.is_empty() {
            out.push_str("\n| op | count |\n|---|---:|\n");
            for s in &self.ops {
                out.push_str(&format!("| `{}` | {} |\n", s.op.name(), s.count));
            }
        }
        if !self.comm.labels.is_empty() {
            out.push_str(
                "\n| label | up bytes | up msgs | down bytes | down msgs |\n|---|---:|---:|---:|---:|\n",
            );
            for l in &self.comm.labels {
                out.push_str(&format!(
                    "| `{}` | {} | {} | {} | {} |\n",
                    l.label, l.up_bytes, l.up_msgs, l.down_bytes, l.down_msgs
                ));
            }
        }
        out
    }
}

/// Schema identifier emitted at the top of every cost-report suite.
pub const SCHEMA: &str = "spfe-cost-report/v3";

/// The v2 schema identifier (per-span latency quantiles, no heap axis);
/// [`crate::suite::parse_suite`] still reads documents carrying it.
pub const SCHEMA_V2: &str = "spfe-cost-report/v2";

/// The original schema identifier; [`crate::suite::parse_suite`] still
/// reads documents carrying it.
pub const SCHEMA_V1: &str = "spfe-cost-report/v1";

/// Renders a suite of reports as the `spfe-cost-report/v3` document
/// (pretty enough to diff, strict enough to parse).
pub fn suite_json(threads: usize, reports: &[CostReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"threads\": {threads},\n  \"reports\": [\n"
    ));
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&r.to_json());
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    fn sample() -> CostReport {
        CostReport {
            experiment: "e1".into(),
            protocol: "select1-gm".into(),
            elapsed_ns: 1_234_567,
            spans: vec![
                SpanStat {
                    path: "select1".into(),
                    calls: 1,
                    ns: 1_000_000,
                    p50_ns: 1_048_575,
                    p95_ns: 1_048_575,
                    p99_ns: 1_048_575,
                    allocs: 10,
                    alloc_bytes: 2_048,
                    peak_live_bytes: 4_096,
                },
                SpanStat {
                    path: "select1/server-scan".into(),
                    calls: 2,
                    ns: 800_000,
                    p50_ns: 524_287,
                    p95_ns: 524_287,
                    p99_ns: 524_287,
                    allocs: 6,
                    alloc_bytes: 1_024,
                    peak_live_bytes: 4_000,
                },
            ],
            ops: vec![
                OpStat {
                    op: Op::Modexp,
                    count: 42,
                },
                OpStat {
                    op: Op::PoolSteals,
                    count: 3,
                },
            ],
            comm: CommStat {
                up_bytes: 100,
                down_bytes: 200,
                messages: 4,
                half_rounds: 2,
                labels: vec![LabelStat {
                    label: "pir-query".into(),
                    up_bytes: 100,
                    up_msgs: 2,
                    down_bytes: 0,
                    down_msgs: 0,
                }],
            },
            mem: MemStat {
                allocs: 16,
                alloc_bytes: 3_072,
                free_bytes: 2_000,
                reallocs: 2,
                live_bytes: 1_072,
                peak_live_bytes: 4_096,
            },
        }
    }

    #[test]
    fn json_parses_and_has_all_fields() {
        let doc = parse(&sample().to_json()).unwrap();
        assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("e1"));
        assert_eq!(
            doc.get("protocol").and_then(Json::as_str),
            Some("select1-gm")
        );
        assert_eq!(
            doc.get("elapsed_ns").and_then(Json::as_u64),
            Some(1_234_567)
        );
        let spans = doc.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(
            spans[1].get("path").and_then(Json::as_str),
            Some("select1/server-scan")
        );
        assert_eq!(
            spans[0].get("p50_ns").and_then(Json::as_u64),
            Some(1_048_575)
        );
        assert_eq!(spans[1].get("p99_ns").and_then(Json::as_u64), Some(524_287));
        assert_eq!(spans[0].get("allocs").and_then(Json::as_u64), Some(10));
        assert_eq!(
            spans[0].get("alloc_bytes").and_then(Json::as_u64),
            Some(2_048)
        );
        assert_eq!(
            spans[1].get("peak_live_bytes").and_then(Json::as_u64),
            Some(4_000)
        );
        let mem = doc.get("mem").unwrap();
        assert_eq!(mem.get("allocs").and_then(Json::as_u64), Some(16));
        assert_eq!(mem.get("reallocs").and_then(Json::as_u64), Some(2));
        assert_eq!(
            mem.get("peak_live_bytes").and_then(Json::as_u64),
            Some(4_096)
        );
        let ops = doc.get("ops").and_then(Json::as_arr).unwrap();
        assert_eq!(ops[0].get("name").and_then(Json::as_str), Some("modexp"));
        assert_eq!(ops[0].get("deterministic"), Some(&Json::Bool(true)));
        assert_eq!(ops[1].get("deterministic"), Some(&Json::Bool(false)));
        let comm = doc.get("comm").unwrap();
        assert_eq!(comm.get("half_rounds").and_then(Json::as_u64), Some(2));
        let labels = comm.get("labels").and_then(Json::as_arr).unwrap();
        assert_eq!(
            labels[0].get("label").and_then(Json::as_str),
            Some("pir-query")
        );
    }

    #[test]
    fn suite_json_wraps_with_schema() {
        let doc = parse(&suite_json(4, &[sample(), sample()])).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("threads").and_then(Json::as_u64), Some(4));
        assert_eq!(doc.get("reports").and_then(Json::as_arr).unwrap().len(), 2);
    }

    #[test]
    fn empty_suite_parses() {
        let doc = parse(&suite_json(1, &[])).unwrap();
        assert_eq!(doc.get("reports").and_then(Json::as_arr).unwrap().len(), 0);
    }

    #[test]
    fn markdown_mentions_everything() {
        let md = sample().to_markdown();
        assert!(md.contains("e1"));
        assert!(md.contains("select1/server-scan"));
        assert!(md.contains("modexp"));
        assert!(md.contains("pir-query"));
        assert!(md.contains("rounds: 1"));
        assert!(md.contains("peak live: 4096 B"), "{md}");
        assert!(md.contains("| allocs |"), "heap span columns: {md}");
    }

    #[test]
    fn markdown_omits_heap_columns_when_zero() {
        let mut r = sample();
        r.mem = MemStat::default();
        for s in &mut r.spans {
            s.allocs = 0;
            s.alloc_bytes = 0;
            s.peak_live_bytes = 0;
        }
        let md = r.to_markdown();
        assert!(!md.contains("heap:"), "{md}");
        assert!(!md.contains("| allocs |"), "{md}");
    }

    #[test]
    fn op_count_lookup() {
        let r = sample();
        assert_eq!(r.op_count(Op::Modexp), 42);
        assert_eq!(r.op_count(Op::GmEncrypt), 0);
    }

    #[test]
    fn assemble_keeps_nonzero_ops_only() {
        let snap = OpsSnapshot::default();
        let r = CostReport::assemble(
            "e",
            "p",
            1,
            Vec::new(),
            &snap,
            CommStat::default(),
            MemStat::default(),
        );
        assert!(r.ops.is_empty());
        assert_eq!(r.experiment, "e");
    }
}
