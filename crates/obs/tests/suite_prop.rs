//! Property tests for the version-aware suite reader (`suite.rs`):
//! randomly generated reports round-trip through every schema version
//! with field-level equality, and mixed-version directories parse with
//! the right detected versions.
//!
//! The v3 documents are rendered by the production [`suite_json`]; the
//! v1/v2 documents by a local renderer that emits exactly the fields
//! those versions defined, mirroring what old `spfe-tables` binaries
//! wrote.

use proptest::prelude::*;
use spfe_obs::{
    parse_suite, suite_json, CommStat, CostReport, LabelStat, MemStat, Op, OpStat, SpanStat,
    SCHEMA_V1, SCHEMA_V2,
};

/// Renders `reports` as a v1 or v2 suite document: v1 spans carry only
/// `path`/`calls`/`ns`, v2 adds the latency quantiles, and neither has
/// the heap axis or the report-level `mem` object.
fn render_legacy(version: u32, threads: u64, reports: &[CostReport]) -> String {
    let tag = match version {
        1 => SCHEMA_V1,
        _ => SCHEMA_V2,
    };
    let mut out = format!("{{\"schema\": \"{tag}\", \"threads\": {threads}, \"reports\": [");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"experiment\":\"{}\",\"protocol\":\"{}\",\"elapsed_ns\":{},\"spans\":[",
            r.experiment, r.protocol, r.elapsed_ns
        ));
        for (j, s) in r.spans.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":\"{}\",\"calls\":{},\"ns\":{}",
                s.path, s.calls, s.ns
            ));
            if version >= 2 {
                out.push_str(&format!(
                    ",\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}",
                    s.p50_ns, s.p95_ns, s.p99_ns
                ));
            }
            out.push('}');
        }
        out.push_str("],\"ops\":[");
        for (j, o) in r.ops.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"count\":{},\"deterministic\":{}}}",
                o.op.name(),
                o.count,
                o.op.deterministic()
            ));
        }
        out.push_str(&format!(
            "],\"comm\":{{\"up_bytes\":{},\"down_bytes\":{},\"messages\":{},\"half_rounds\":{},\"labels\":[",
            r.comm.up_bytes, r.comm.down_bytes, r.comm.messages, r.comm.half_rounds
        ));
        for (j, l) in r.comm.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":\"{}\",\"up_bytes\":{},\"up_msgs\":{},\"down_bytes\":{},\"down_msgs\":{}}}",
                l.label, l.up_bytes, l.up_msgs, l.down_bytes, l.down_msgs
            ));
        }
        out.push_str("]}}");
    }
    out.push_str("]}");
    out
}

/// What a legacy document is expected to parse back to: the heap axis
/// (and, for v1, the quantiles) zeroed, everything else intact.
fn downgrade(version: u32, reports: &[CostReport]) -> Vec<CostReport> {
    reports
        .iter()
        .cloned()
        .map(|mut r| {
            r.mem = MemStat::default();
            for s in &mut r.spans {
                s.allocs = 0;
                s.alloc_bytes = 0;
                s.peak_live_bytes = 0;
                if version == 1 {
                    s.p50_ns = 0;
                    s.p95_ns = 0;
                    s.p99_ns = 0;
                }
            }
            r
        })
        .collect()
}

type SpanTuple = (String, (u64, u64), (u64, u64, u64), (u64, u64, u64));
type LabelTuple = (String, u64, u64, u64, u64);

fn build_report(
    ids: (String, String, u64),
    spans: Vec<SpanTuple>,
    ops: Vec<(proptest::sample::Index, u64)>,
    comm: ((u64, u64, u64, u32), Vec<LabelTuple>),
    mem: (u64, u64, u64, (u64, u64, u64)),
) -> CostReport {
    let (experiment, protocol, elapsed_ns) = ids;
    let ((up_bytes, down_bytes, messages, half_rounds), labels) = comm;
    let (allocs, alloc_bytes, free_bytes, (reallocs, live_bytes, peak_live_bytes)) = mem;
    CostReport {
        experiment,
        protocol,
        elapsed_ns,
        spans: spans
            .into_iter()
            .map(
                |(path, (calls, ns), (p50_ns, p95_ns, p99_ns), (allocs, alloc_bytes, peak))| {
                    SpanStat {
                        path,
                        calls,
                        ns,
                        p50_ns,
                        p95_ns,
                        p99_ns,
                        allocs,
                        alloc_bytes,
                        peak_live_bytes: peak,
                    }
                },
            )
            .collect(),
        ops: ops
            .into_iter()
            .map(|(which, count)| OpStat {
                op: Op::ALL[which.index(Op::ALL.len())],
                count,
            })
            .collect(),
        comm: CommStat {
            up_bytes,
            down_bytes,
            messages,
            half_rounds,
            labels: labels
                .into_iter()
                .map(
                    |(label, up_bytes, up_msgs, down_bytes, down_msgs)| LabelStat {
                        label,
                        up_bytes,
                        up_msgs,
                        down_bytes,
                        down_msgs,
                    },
                )
                .collect(),
        },
        mem: MemStat {
            allocs,
            alloc_bytes,
            free_bytes,
            reallocs,
            live_bytes,
            peak_live_bytes,
        },
    }
}

fn span_strategy() -> impl Strategy<Value = SpanTuple> {
    (
        "[a-z/]{1,12}",
        (0u64..(1u64 << 62), 0u64..(1u64 << 62)),
        (0u64..(1u64 << 62), 0u64..(1u64 << 62), 0u64..(1u64 << 62)),
        (0u64..(1u64 << 62), 0u64..(1u64 << 62), 0u64..(1u64 << 62)),
    )
}

fn label_strategy() -> impl Strategy<Value = LabelTuple> {
    (
        "[a-z-]{1,10}",
        0u64..1_000_000,
        0u64..100,
        0u64..1_000_000,
        0u64..100,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_reports_roundtrip_under_every_schema_version(
        threads in 1u64..17,
        ids in ("[a-z0-9]{1,8}", "[a-z0-9]{1,10}", 0u64..(1u64 << 62)),
        spans in proptest::collection::vec(span_strategy(), 0..4),
        ops in proptest::collection::vec((any::<proptest::sample::Index>(), 0u64..(1u64 << 62)), 0..4),
        comm in ((0u64..(1u64 << 62), 0u64..(1u64 << 62), 0u64..1_000_000, 0u32..1_000), proptest::collection::vec(label_strategy(), 0..3)),
        mem in (0u64..(1u64 << 62), 0u64..(1u64 << 62), 0u64..(1u64 << 62), (0u64..(1u64 << 62), 0u64..(1u64 << 62), 0u64..(1u64 << 62))),
    ) {
        let reports = vec![build_report(ids, spans, ops, comm, mem)];

        // v3: the production renderer must round-trip field-exactly.
        let v3 = parse_suite(&suite_json(threads as usize, &reports)).unwrap();
        prop_assert_eq!(v3.version, 3);
        prop_assert_eq!(v3.threads, threads);
        prop_assert_eq!(&v3.reports, &reports);

        // v2: quantiles survive, the heap axis parses as zero.
        let v2 = parse_suite(&render_legacy(2, threads, &reports)).unwrap();
        prop_assert_eq!(v2.version, 2);
        prop_assert_eq!(&v2.reports, &downgrade(2, &reports));

        // v1: quantiles and heap axis both parse as zero.
        let v1 = parse_suite(&render_legacy(1, threads, &reports)).unwrap();
        prop_assert_eq!(v1.version, 1);
        prop_assert_eq!(&v1.reports, &downgrade(1, &reports));
    }

    #[test]
    fn mixed_version_directories_parse_consistently(
        threads in 1u64..5,
        ids in ("[a-z0-9]{1,6}", "[a-z0-9]{1,6}", 0u64..(1u64 << 62)),
        spans in proptest::collection::vec(span_strategy(), 1..3),
        ops in proptest::collection::vec((any::<proptest::sample::Index>(), 1u64..1_000_000), 1..3),
    ) {
        // The same logical measurements persisted by three generations of
        // the tool: every file parses, versions are detected per file (the
        // `validate` tally), and the shared fields agree across versions.
        let reports = vec![build_report(
            ids,
            spans,
            ops,
            ((64, 32, 2, 2), Vec::new()),
            (10, 1024, 512, (1, 512, 2048)),
        )];
        let dir = [
            render_legacy(1, threads, &reports),
            render_legacy(2, threads, &reports),
            suite_json(threads as usize, &reports),
        ];
        let parsed: Vec<_> = dir.iter().map(|doc| parse_suite(doc).unwrap()).collect();
        let versions: Vec<u32> = parsed.iter().map(|s| s.version).collect();
        prop_assert_eq!(versions, vec![1, 2, 3]);
        for suite in &parsed {
            prop_assert_eq!(suite.threads, threads);
            prop_assert_eq!(suite.reports.len(), reports.len());
            for (got, want) in suite.reports.iter().zip(&reports) {
                // Version-independent fields are identical everywhere.
                prop_assert_eq!(&got.experiment, &want.experiment);
                prop_assert_eq!(&got.protocol, &want.protocol);
                prop_assert_eq!(got.elapsed_ns, want.elapsed_ns);
                prop_assert_eq!(&got.ops, &want.ops);
                prop_assert_eq!(&got.comm, &want.comm);
                for (gs, ws) in got.spans.iter().zip(&want.spans) {
                    prop_assert_eq!(&gs.path, &ws.path);
                    prop_assert_eq!(gs.calls, ws.calls);
                    prop_assert_eq!(gs.ns, ws.ns);
                }
            }
            // The heap axis exists only from v3 on.
            let heap: u64 = suite.reports.iter().map(|r| r.mem.allocs).sum();
            prop_assert_eq!(heap > 0, suite.version >= 3);
        }
    }
}
