//! Property tests for the log-bucketed latency histogram (`histo.rs`):
//! merging preserves total counts, and every reported quantile is a
//! faithful upper bound landing in the same log2 bucket as the exact
//! percentile of the recorded samples.

use proptest::prelude::*;
use spfe_obs::histo::Histo;

/// The bucket index for `value` — mirror of the (private) production
/// rule: the bit length, with 0 in bucket 0.
fn bucket(value: u64) -> u32 {
    u64::BITS - value.leading_zeros()
}

/// The exact sample at quantile `q` of `sorted` (the same 1-based
/// ceil-rank rule the histogram uses).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let total = sorted.len() as u64;
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_preserves_total_count(
        a in proptest::collection::vec(0u64..(1u64 << 62), 0..50),
        b in proptest::collection::vec(0u64..(1u64 << 62), 0..50),
    ) {
        let mut ha = Histo::new();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = Histo::new();
        for &v in &b {
            hb.record(v);
        }
        prop_assert_eq!(ha.count(), a.len() as u64);
        prop_assert_eq!(hb.count(), b.len() as u64);
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
        // Merging an empty histogram is the identity on counts.
        ha.merge(&Histo::new());
        prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
    }

    #[test]
    fn quantiles_land_in_the_exact_percentiles_bucket(
        samples in proptest::collection::vec(0u64..(1u64 << 62), 1..120),
    ) {
        let mut h = Histo::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for (q, got) in [(0.50, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
            let exact = exact_quantile(&sorted, q);
            prop_assert!(
                got >= exact,
                "q={q}: reported {got} under-estimates the exact percentile {exact}"
            );
            let (gb, eb) = (bucket(got), bucket(exact));
            prop_assert!(
                gb.abs_diff(eb) <= 1,
                "q={q}: reported {got} (bucket {gb}) not within one log2 bucket \
                 of exact {exact} (bucket {eb})"
            );
        }
    }

    #[test]
    fn merged_quantiles_match_recording_everything_into_one_histogram(
        a in proptest::collection::vec(0u64..(1u64 << 62), 1..60),
        b in proptest::collection::vec(0u64..(1u64 << 62), 1..60),
    ) {
        let mut ha = Histo::new();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = Histo::new();
        for &v in &b {
            hb.record(v);
        }
        ha.merge(&hb);
        let mut all = Histo::new();
        for &v in a.iter().chain(&b) {
            all.record(v);
        }
        prop_assert_eq!(ha, all, "merge must equal recording the union");
    }
}
