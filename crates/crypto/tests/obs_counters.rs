//! Thread-count invariance of the op counters (the `spfe-obs` contract):
//! the deterministic counter subset must be bit-identical whether the
//! worker pool runs with one thread or several, because every probe site
//! counts *work items*, not scheduling events.

#![cfg(feature = "obs")]

use proptest::prelude::*;
use spfe_crypto::{
    elgamal_keygen, ChaChaRng, HomomorphicPk, HomomorphicScheme, HomomorphicSk, Paillier,
    SchnorrGroup,
};
use spfe_math::Nat;
use spfe_obs::{Op, OpsSnapshot};
use std::sync::Mutex;

/// The op counters are process-global; serialize the tests in this binary
/// so their measurement windows never overlap.
static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` under `threads` pool workers (with the sequential-fallback
/// threshold forced to 1 so even small batches actually hit the pool) and
/// returns the deterministic part of the counters it incremented.
fn counts_at(threads: usize, f: impl Fn(&mut ChaChaRng)) -> OpsSnapshot {
    spfe_math::par::set_threads(Some(threads));
    spfe_math::par::set_seq_threshold(Some(1));
    spfe_obs::reset_ops();
    let mut rng = ChaChaRng::from_u64_seed(0xC0DE);
    f(&mut rng);
    let snap = spfe_obs::ops_snapshot().deterministic_part();
    spfe_math::par::set_seq_threshold(None);
    spfe_math::par::set_threads(None);
    snap
}

#[test]
fn paillier_batch_counts_thread_invariant() {
    let _g = LOCK.lock().unwrap();
    let mut rng = ChaChaRng::from_u64_seed(1);
    let (pk, sk) = Paillier::keygen(160, &mut rng);
    let run = |rng: &mut ChaChaRng| {
        let ms: Vec<Nat> = (0..12u64).map(Nat::from).collect();
        let cts = pk.encrypt_batch(&ms, rng);
        let cs: Vec<Nat> = (1..=12u64).map(Nat::from).collect();
        let prods = pk.scalar_mul_batch(&cts, &cs);
        for (i, ct) in prods.iter().enumerate() {
            assert_eq!(sk.decrypt(ct).to_u64().unwrap(), (i * (i + 1)) as u64);
        }
    };
    let serial = counts_at(1, run);
    let parallel = counts_at(4, run);
    assert_eq!(serial, parallel);
    assert_eq!(serial.get(Op::PaillierEncrypt), 12);
    assert_eq!(serial.get(Op::PaillierDecrypt), 12);
    assert_eq!(serial.get(Op::HomScalarMul), 12);
    assert!(serial.get(Op::Modexp) > 0);
}

#[test]
fn elgamal_batch_counts_thread_invariant() {
    let _g = LOCK.lock().unwrap();
    let mut rng = ChaChaRng::from_u64_seed(2);
    let group = SchnorrGroup::generate(96, &mut rng);
    let (pk, sk) = elgamal_keygen(group, 1 << 12, &mut rng);
    let run = |rng: &mut ChaChaRng| {
        let ms: Vec<Nat> = (0..9u64).map(Nat::from).collect();
        let cts = pk.encrypt_batch(&ms, rng);
        let cs: Vec<Nat> = (1..=9u64).map(Nat::from).collect();
        let prods = pk.scalar_mul_batch(&cts, &cs);
        for (i, ct) in prods.iter().enumerate() {
            assert_eq!(sk.decrypt(ct).to_u64().unwrap(), (i * (i + 1)) as u64);
        }
    };
    let serial = counts_at(1, run);
    let parallel = counts_at(4, run);
    assert_eq!(serial, parallel);
    assert_eq!(serial.get(Op::ElGamalEncrypt), 9);
    assert_eq!(serial.get(Op::ElGamalDecrypt), 9);
    assert_eq!(serial.get(Op::HomScalarMul), 9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn prop_paillier_batch_counts_thread_invariant(
        len in 1usize..24,
        vals in proptest::collection::vec(0u64..1_000, 24..25),
    ) {
        let _g = LOCK.lock().unwrap();
        let mut rng = ChaChaRng::from_u64_seed(3);
        let (pk, _sk) = Paillier::keygen(160, &mut rng);
        let run = |rng: &mut ChaChaRng| {
            let ms: Vec<Nat> = vals[..len].iter().map(|&v| Nat::from(v)).collect();
            let cts = pk.encrypt_batch(&ms, rng);
            let cs: Vec<Nat> = vec![Nat::from(3u64); len];
            let _ = pk.scalar_mul_batch(&cts, &cs);
        };
        let serial = counts_at(1, run);
        let parallel = counts_at(4, run);
        prop_assert_eq!(serial, parallel);
        prop_assert_eq!(serial.get(Op::PaillierEncrypt), len as u64);
        prop_assert_eq!(serial.get(Op::HomScalarMul), len as u64);
    }
}
