//! ChaCha20 stream cipher and the derived cryptographic RNG.
//!
//! ChaCha20 (RFC 8439) is the workspace's only symmetric primitive for key
//! streams: it backs [`ChaChaRng`] (the cryptographically secure
//! [`RandomSource`]), the garbled-circuit PRF, and PRG-based virtual-database
//! expansion in the PIR substrate.

use spfe_math::RandomSource;

/// ChaCha20 state constants ("expand 32-byte k").
const CONSTANTS: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 block for `(key, counter, nonce)`.
pub fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().unwrap());
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Produces `len` keystream bytes for `(key, nonce)` starting at block 0 —
/// the PRG `G : {0,1}^κ → {0,1}^*` used to expand short seeds into long
/// pads (garbled-circuit key expansion, PIR virtual databases).
pub fn keystream(key: &[u8; 32], nonce: &[u8; 12], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter = 0u32;
    while out.len() < len {
        let block = chacha20_block(key, counter, nonce);
        let take = (len - out.len()).min(64);
        out.extend_from_slice(&block[..take]);
        counter = counter.checked_add(1).expect("keystream too long");
    }
    out
}

/// XORs the ChaCha20 keystream into `data` (encrypt == decrypt).
pub fn xor_keystream(key: &[u8; 32], nonce: &[u8; 12], data: &mut [u8]) {
    let ks = keystream(key, nonce, data.len());
    for (d, k) in data.iter_mut().zip(ks) {
        *d ^= k;
    }
}

/// A cryptographically secure RNG built on the ChaCha20 block function.
///
/// # Examples
///
/// ```
/// use spfe_crypto::ChaChaRng;
/// use spfe_math::RandomSource;
/// let mut rng = ChaChaRng::from_seed([7u8; 32]);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct ChaChaRng {
    key: [u8; 32],
    counter: u32,
    buf: [u8; 64],
    pos: usize,
}

impl ChaChaRng {
    /// Deterministic generator from a 32-byte seed (tests, shared PSM
    /// randomness, PRG expansion).
    pub fn from_seed(seed: [u8; 32]) -> Self {
        ChaChaRng {
            key: seed,
            counter: 0,
            buf: [0u8; 64],
            pos: 64,
        }
    }

    /// Deterministic generator from a `u64` seed (convenience for tests).
    pub fn from_u64_seed(seed: u64) -> Self {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        Self::from_seed(key)
    }

    /// Generator seeded from the operating system (`/dev/urandom`).
    ///
    /// # Panics
    ///
    /// Panics if the OS entropy source cannot be read.
    pub fn from_os_entropy() -> Self {
        use std::io::Read;
        let mut seed = [0u8; 32];
        let mut f = std::fs::File::open("/dev/urandom").expect("no OS entropy source available");
        f.read_exact(&mut seed).expect("failed to read OS entropy");
        Self::from_seed(seed)
    }

    fn refill(&mut self) {
        self.buf = chacha20_block(&self.key, self.counter, &[0u8; 12]);
        self.counter = self.counter.wrapping_add(1);
        if self.counter == 0 {
            // Ratchet the key on counter wrap (once per 256 GiB).
            let rekey = chacha20_block(&self.key, u32::MAX, &[0xffu8; 12]);
            self.key.copy_from_slice(&rekey[..32]);
        }
        self.pos = 0;
    }
}

impl RandomSource for ChaChaRng {
    fn next_u64(&mut self) -> u64 {
        if self.pos + 8 > 64 {
            self.refill();
        }
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }

    fn fill_bytes(&mut self, buf: &mut [u8]) {
        for b in buf.iter_mut() {
            if self.pos >= 64 {
                self.refill();
            }
            *b = self.buf[self.pos];
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_block_test_vector() {
        // RFC 8439 §2.3.2.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        let expect_start = [0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15];
        assert_eq!(&block[..8], &expect_start);
        let expect_end = [0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e];
        assert_eq!(&block[56..], &expect_end);
    }

    #[test]
    fn keystream_is_prefix_consistent() {
        let key = [3u8; 32];
        let nonce = [5u8; 12];
        let long = keystream(&key, &nonce, 200);
        let short = keystream(&key, &nonce, 70);
        assert_eq!(&long[..70], &short[..]);
    }

    #[test]
    fn xor_keystream_roundtrip() {
        let key = [9u8; 32];
        let nonce = [1u8; 12];
        let mut data = b"selective private function evaluation".to_vec();
        let orig = data.clone();
        xor_keystream(&key, &nonce, &mut data);
        assert_ne!(data, orig);
        xor_keystream(&key, &nonce, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn rng_deterministic_and_seed_sensitive() {
        let mut a = ChaChaRng::from_u64_seed(1);
        let mut b = ChaChaRng::from_u64_seed(1);
        let mut c = ChaChaRng::from_u64_seed(2);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(ChaChaRng::from_u64_seed(1).next_u64(), c.next_u64());
    }

    #[test]
    fn os_entropy_generators_differ() {
        let mut a = ChaChaRng::from_os_entropy();
        let mut b = ChaChaRng::from_os_entropy();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_matches_next_u64_stream() {
        let mut a = ChaChaRng::from_u64_seed(5);
        let mut b = ChaChaRng::from_u64_seed(5);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..], &w1);
    }
}
