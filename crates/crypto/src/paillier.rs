//! The Paillier cryptosystem (ref. \[41\] of the paper).
//!
//! Additively homomorphic over `Z_n` for an RSA modulus `n` — the "larger
//! homomorphism group" instantiation the paper points to for its
//! input-selection and statistics protocols, where plaintexts are field
//! elements or data items rather than single bits.
//!
//! With generator `g = n + 1`:
//! * `E(m; r) = (1 + m·n) · r^n  mod n²`
//! * `D(c) = L(c^λ mod n²) · λ^{-1} mod n`, where `L(x) = (x-1)/n`.

use crate::hom::{HomomorphicPk, HomomorphicScheme, HomomorphicSk};
use spfe_math::modular::mod_inv;
use spfe_math::prime::gen_prime;
use spfe_math::{Montgomery, Nat, RandomSource};
use spfe_obs::{count, Op};
use std::sync::Arc;

use spfe_math::par::CostClass;

/// A Paillier ciphertext: a residue mod `n²`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierCt(pub(crate) Nat);

/// Paillier public key.
#[derive(Clone)]
pub struct PaillierPk {
    n: Nat,
    n_sq: Nat,
    /// Montgomery context for `n²` (shared with clones; keygen is per-session).
    mont: Arc<Montgomery>,
    ct_bytes: usize,
}

impl std::fmt::Debug for PaillierPk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PaillierPk")
            .field("n_bits", &self.n.bit_len())
            .finish()
    }
}

/// Paillier secret key.
#[derive(Clone)]
pub struct PaillierSk {
    pk: PaillierPk,
    /// λ = lcm(p-1, q-1).
    lambda: Nat,
    /// λ^{-1} mod n (valid since g = n+1).
    mu: Nat,
}

impl std::fmt::Debug for PaillierSk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PaillierSk")
            .field("n_bits", &self.pk.n.bit_len())
            .finish()
    }
}

impl PaillierPk {
    fn from_n(n: Nat) -> Self {
        let n_sq = n.square();
        let ct_bytes = n_sq.bit_len().div_ceil(8);
        let mont = Arc::new(Montgomery::new(n_sq.clone()));
        PaillierPk {
            n,
            n_sq,
            mont,
            ct_bytes,
        }
    }

    /// The modulus `n` (also the plaintext modulus).
    pub fn n(&self) -> &Nat {
        &self.n
    }

    /// The ciphertext modulus `n²`.
    pub fn n_squared(&self) -> &Nat {
        &self.n_sq
    }

    fn random_unit<R: RandomSource + ?Sized>(&self, rng: &mut R) -> Nat {
        loop {
            let r = Nat::random_below(rng, &self.n);
            if !r.is_zero() && spfe_math::modular::gcd(&r, &self.n).is_one() {
                return r;
            }
        }
    }
}

impl HomomorphicPk for PaillierPk {
    type Ciphertext = PaillierCt;

    fn plaintext_modulus(&self) -> &Nat {
        &self.n
    }

    fn encrypt<R: RandomSource + ?Sized>(&self, m: &Nat, rng: &mut R) -> PaillierCt {
        count(Op::PaillierEncrypt, 1);
        let m = m.rem(&self.n);
        let r = self.random_unit(rng);
        // (1 + m·n) · r^n mod n²
        let gm = Nat::one().add(&m.mul(&self.n)).rem(&self.n_sq);
        let rn = self.mont.pow(&r, &self.n);
        PaillierCt(self.mont.mul_mod(&gm, &rn))
    }

    fn add(&self, a: &PaillierCt, b: &PaillierCt) -> PaillierCt {
        count(Op::HomAdd, 1);
        PaillierCt(self.mont.mul_mod(&a.0, &b.0))
    }

    fn mul_const(&self, a: &PaillierCt, c: &Nat) -> PaillierCt {
        count(Op::HomScalarMul, 1);
        let reduced;
        let c = if c < &self.n {
            c
        } else {
            reduced = c.rem(&self.n);
            &reduced
        };
        PaillierCt(self.mont.pow(&a.0, c))
    }

    /// Batch encryption on the worker pool: the per-ciphertext randomness
    /// is drawn serially first (exactly the stream the serial loop would
    /// draw), then the `r^n mod n²` exponentiations — the actual cost —
    /// run on [`spfe_math::par`].
    fn encrypt_batch<R: RandomSource + ?Sized>(&self, ms: &[Nat], rng: &mut R) -> Vec<PaillierCt> {
        let rs: Vec<Nat> = ms.iter().map(|_| self.random_unit(rng)).collect();
        let jobs: Vec<(&Nat, &Nat)> = ms.iter().zip(&rs).collect();
        spfe_math::par::par_map_cost(CostClass::Heavy, &jobs, |&(m, r)| {
            count(Op::PaillierEncrypt, 1);
            let m = m.rem(&self.n);
            let gm = Nat::one().add(&m.mul(&self.n)).rem(&self.n_sq);
            let rn = self.mont.pow(r, &self.n);
            PaillierCt(self.mont.mul_mod(&gm, &rn))
        })
    }

    /// Batch scalar multiplication (`ct^c mod n²`) on the worker pool;
    /// deterministic, so bit-identical to the serial loop.
    fn scalar_mul_batch(&self, cts: &[PaillierCt], cs: &[Nat]) -> Vec<PaillierCt> {
        assert_eq!(cts.len(), cs.len(), "batch length mismatch");
        let jobs: Vec<(&PaillierCt, &Nat)> = cts.iter().zip(cs).collect();
        spfe_math::par::par_map_cost(CostClass::Heavy, &jobs, |&(ct, c)| {
            count(Op::HomScalarMul, 1);
            let reduced;
            let c = if c < &self.n {
                c
            } else {
                reduced = c.rem(&self.n);
                &reduced
            };
            PaillierCt(self.mont.pow(&ct.0, c))
        })
    }

    fn rerandomize<R: RandomSource + ?Sized>(&self, a: &PaillierCt, rng: &mut R) -> PaillierCt {
        count(Op::HomRerandomize, 1);
        let r = self.random_unit(rng);
        let rn = self.mont.pow(&r, &self.n);
        PaillierCt(a.0.mul(&rn).rem(&self.n_sq))
    }

    fn ciphertext_bytes(&self) -> usize {
        self.ct_bytes
    }

    fn ciphertext_to_bytes(&self, ct: &PaillierCt) -> Vec<u8> {
        ct.0.to_le_bytes_padded(self.ct_bytes)
    }

    fn ciphertext_from_bytes(&self, bytes: &[u8]) -> Option<PaillierCt> {
        if bytes.len() != self.ct_bytes {
            return None;
        }
        let v = Nat::from_le_bytes(bytes);
        if v >= self.n_sq {
            return None;
        }
        Some(PaillierCt(v))
    }
}

impl HomomorphicSk<PaillierPk> for PaillierSk {
    fn decrypt(&self, ct: &PaillierCt) -> Nat {
        count(Op::PaillierDecrypt, 1);
        let pk = &self.pk;
        let x = pk.mont.pow(&ct.0, &self.lambda);
        // L(x) = (x - 1) / n
        let l = x.sub(&Nat::one()).div_rem(&pk.n).0;
        l.mul(&self.mu).rem(&pk.n)
    }
}

/// Marker type implementing [`HomomorphicScheme`] for Paillier.
#[derive(Debug, Clone, Copy)]
pub struct Paillier;

impl HomomorphicScheme for Paillier {
    type Pk = PaillierPk;
    type Sk = PaillierSk;

    /// Generates a Paillier key pair with an (approximately) `bits`-bit
    /// modulus `n = p·q`.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 16`.
    fn keygen<R: RandomSource + ?Sized>(bits: usize, rng: &mut R) -> (PaillierPk, PaillierSk) {
        assert!(bits >= 16, "Paillier modulus must be at least 16 bits");
        loop {
            let p = gen_prime(bits / 2, rng);
            let q = gen_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let p1 = p.sub(&Nat::one());
            let q1 = q.sub(&Nat::one());
            let g = spfe_math::modular::gcd(&p1, &q1);
            let lambda = p1.mul(&q1).div_rem(&g).0; // lcm
            let Some(mu) = mod_inv(&lambda, &n) else {
                continue;
            };
            let pk = PaillierPk::from_n(n);
            let sk = PaillierSk {
                pk: pk.clone(),
                lambda,
                mu,
            };
            return (pk, sk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chacha::ChaChaRng;
    use spfe_math::modular::mod_add;

    fn keys(bits: usize) -> (PaillierPk, PaillierSk, ChaChaRng) {
        let mut rng = ChaChaRng::from_u64_seed(0xA11CE);
        let (pk, sk) = Paillier::keygen(bits, &mut rng);
        (pk, sk, rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (pk, sk, mut rng) = keys(128);
        for v in [0u64, 1, 42, u64::MAX] {
            let m = Nat::from(v);
            let ct = pk.encrypt(&m, &mut rng);
            assert_eq!(sk.decrypt(&ct), m.rem(pk.n()));
        }
    }

    #[test]
    fn additive_homomorphism() {
        let (pk, sk, mut rng) = keys(128);
        let (a, b) = (Nat::from(123_456u64), Nat::from(654_321u64));
        let ct = pk.add(&pk.encrypt(&a, &mut rng), &pk.encrypt(&b, &mut rng));
        assert_eq!(sk.decrypt(&ct), mod_add(&a, &b, pk.n()));
    }

    #[test]
    fn scalar_homomorphism() {
        let (pk, sk, mut rng) = keys(128);
        let a = Nat::from(999u64);
        let ct = pk.mul_const(&pk.encrypt(&a, &mut rng), &Nat::from(1000u64));
        assert_eq!(sk.decrypt(&ct), Nat::from(999_000u64));
    }

    #[test]
    fn subtraction_wraps_mod_n() {
        let (pk, sk, mut rng) = keys(128);
        let (a, b) = (Nat::from(5u64), Nat::from(9u64));
        let ct = pk.sub(&pk.encrypt(&a, &mut rng), &pk.encrypt(&b, &mut rng));
        assert_eq!(sk.decrypt(&ct), pk.n().sub(&Nat::from(4u64)));
    }

    #[test]
    fn rerandomize_preserves_plaintext_changes_ct() {
        let (pk, sk, mut rng) = keys(128);
        let ct = pk.encrypt(&Nat::from(7u64), &mut rng);
        let ct2 = pk.rerandomize(&ct, &mut rng);
        assert_ne!(ct, ct2);
        assert_eq!(sk.decrypt(&ct2), Nat::from(7u64));
    }

    #[test]
    fn probabilistic_encryption() {
        let (pk, _, mut rng) = keys(128);
        let a = pk.encrypt(&Nat::from(1u64), &mut rng);
        let b = pk.encrypt(&Nat::from(1u64), &mut rng);
        assert_ne!(a, b, "two encryptions of 1 must differ");
    }

    #[test]
    fn ciphertext_serialization_roundtrip() {
        let (pk, sk, mut rng) = keys(128);
        let ct = pk.encrypt(&Nat::from(31_337u64), &mut rng);
        let bytes = pk.ciphertext_to_bytes(&ct);
        assert_eq!(bytes.len(), pk.ciphertext_bytes());
        let back = pk.ciphertext_from_bytes(&bytes).unwrap();
        assert_eq!(sk.decrypt(&back), Nat::from(31_337u64));
        assert!(pk.ciphertext_from_bytes(&bytes[1..]).is_none());
    }

    #[test]
    fn larger_key_roundtrip() {
        let (pk, sk, mut rng) = keys(512);
        let m = Nat::random_below(&mut rng, pk.n());
        let ct = pk.encrypt(&m, &mut rng);
        assert_eq!(sk.decrypt(&ct), m);
    }

    #[test]
    fn batch_apis_bit_identical_to_serial() {
        let (pk, _, mut rng) = keys(128);
        let ms: Vec<Nat> = (0..9u64).map(|v| Nat::from(v * 1_234_567)).collect();
        // Same seed on both paths: the batch must draw the identical
        // randomness stream and produce the identical ciphertext bytes,
        // whatever the thread configuration.
        let mut rng_a = rng.clone();
        let serial: Vec<PaillierCt> = ms.iter().map(|m| pk.encrypt(m, &mut rng_a)).collect();
        for threads in [1, 4] {
            spfe_math::par::set_threads(Some(threads));
            let mut rng_b = rng.clone();
            let batch = pk.encrypt_batch(&ms, &mut rng_b);
            spfe_math::par::set_threads(None);
            assert_eq!(serial, batch, "threads={threads}");
            // The rng must end in the same state as the serial loop left it.
            assert_eq!(
                rng_a.clone().next_u64(),
                rng_b.next_u64(),
                "threads={threads}"
            );
        }

        let cs: Vec<Nat> = (0..9u64).map(|v| Nat::from(v + 2)).collect();
        let serial_sm: Vec<PaillierCt> = serial
            .iter()
            .zip(&cs)
            .map(|(ct, c)| pk.mul_const(ct, c))
            .collect();
        spfe_math::par::set_threads(Some(4));
        let batch_sm = pk.scalar_mul_batch(&serial, &cs);
        spfe_math::par::set_threads(None);
        assert_eq!(serial_sm, batch_sm);
        let _ = rng.next_u64();
    }

    #[test]
    fn linear_combination_of_many() {
        // Σ c_i · m_i computed under encryption — the §4 weighted-sum core.
        let (pk, sk, mut rng) = keys(128);
        let ms = [3u64, 1, 4, 1, 5];
        let cs = [2u64, 7, 1, 8, 2];
        let mut acc = pk.encrypt_zero(&mut rng);
        for (&m, &c) in ms.iter().zip(&cs) {
            let term = pk.mul_const(&pk.encrypt(&Nat::from(m), &mut rng), &Nat::from(c));
            acc = pk.add(&acc, &term);
        }
        let expect: u64 = ms.iter().zip(&cs).map(|(&m, &c)| m * c).sum();
        assert_eq!(sk.decrypt(&acc), Nat::from(expect));
    }
}
