//! # spfe-crypto
//!
//! Cryptographic substrates for the SPFE reproduction, implemented from
//! scratch: the ChaCha20 PRG / secure RNG, SHA-256 + HMAC, and the three
//! additively homomorphic cryptosystems the paper's single-server protocols
//! are built on (Paillier, Goldwasser–Micali, exponential ElGamal), unified
//! behind the [`HomomorphicPk`]/[`HomomorphicSk`] traits.
//!
//! # Examples
//!
//! ```
//! use spfe_crypto::{ChaChaRng, Paillier, HomomorphicPk, HomomorphicSk, HomomorphicScheme};
//! use spfe_math::Nat;
//!
//! let mut rng = ChaChaRng::from_u64_seed(1);
//! let (pk, sk) = Paillier::keygen(128, &mut rng);
//! let ct = pk.add(
//!     &pk.encrypt(&Nat::from(20u64), &mut rng),
//!     &pk.encrypt(&Nat::from(22u64), &mut rng),
//! );
//! assert_eq!(sk.decrypt(&ct), Nat::from(42u64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha;
pub mod elgamal;
pub mod gm;
pub mod hom;
pub mod paillier;
pub mod sha256;

pub use chacha::{chacha20_block, keystream, xor_keystream, ChaChaRng};
pub use elgamal::{elgamal_keygen, ElGamalCt, ElGamalPk, ElGamalSk, SchnorrGroup};
pub use gm::{GmCt, GmPk, GmSk, GoldwasserMicali};
pub use hom::{HomomorphicPk, HomomorphicScheme, HomomorphicSk};
pub use paillier::{Paillier, PaillierCt, PaillierPk, PaillierSk};
pub use sha256::{hmac_sha256, prf, Sha256};
