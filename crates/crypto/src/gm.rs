//! The Goldwasser–Micali cryptosystem (ref. \[29\] of the paper).
//!
//! The paper's running example of homomorphic encryption with plaintext
//! group `G = Z_2`: `E(a) · E(b) = E(a ⊕ b)`. A plaintext bit is encoded as
//! the quadratic residuosity of the ciphertext modulo `n = p·q`.

use crate::hom::{HomomorphicPk, HomomorphicScheme, HomomorphicSk};
use spfe_math::modular::{jacobi, mod_pow};
use spfe_math::prime::gen_blum_prime;
use spfe_math::{Nat, RandomSource};
use spfe_obs::{count, Op};

/// A GM ciphertext: a residue mod `n` with Jacobi symbol `+1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GmCt(pub(crate) Nat);

/// Goldwasser–Micali public key `(n, z)` with `z` a quadratic non-residue of
/// Jacobi symbol `+1`.
#[derive(Clone)]
pub struct GmPk {
    n: Nat,
    z: Nat,
    ct_bytes: usize,
    /// Cached constant 2 = plaintext modulus.
    two: Nat,
}

impl std::fmt::Debug for GmPk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GmPk")
            .field("n_bits", &self.n.bit_len())
            .finish()
    }
}

/// Goldwasser–Micali secret key (the factorization).
#[derive(Clone)]
pub struct GmSk {
    p: Nat,
}

impl std::fmt::Debug for GmSk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GmSk")
            .field("p_bits", &self.p.bit_len())
            .finish()
    }
}

impl GmPk {
    /// The modulus `n`.
    pub fn n(&self) -> &Nat {
        &self.n
    }
}

impl HomomorphicPk for GmPk {
    type Ciphertext = GmCt;

    fn plaintext_modulus(&self) -> &Nat {
        &self.two
    }

    fn encrypt<R: RandomSource + ?Sized>(&self, m: &Nat, rng: &mut R) -> GmCt {
        count(Op::GmEncrypt, 1);
        let bit = m.bit(0);
        loop {
            let r = Nat::random_below(rng, &self.n);
            if r.is_zero() || !spfe_math::modular::gcd(&r, &self.n).is_one() {
                continue;
            }
            let r2 = r.square().rem(&self.n);
            let ct = if bit {
                r2.mul(&self.z).rem(&self.n)
            } else {
                r2
            };
            return GmCt(ct);
        }
    }

    fn add(&self, a: &GmCt, b: &GmCt) -> GmCt {
        count(Op::HomAdd, 1);
        GmCt(a.0.mul(&b.0).rem(&self.n))
    }

    fn mul_const(&self, a: &GmCt, c: &Nat) -> GmCt {
        count(Op::HomScalarMul, 1);
        // Over Z_2 the only scalars are 0 and 1.
        if c.bit(0) {
            a.clone()
        } else {
            GmCt(Nat::one())
        }
    }

    fn rerandomize<R: RandomSource + ?Sized>(&self, a: &GmCt, rng: &mut R) -> GmCt {
        count(Op::HomRerandomize, 1);
        let zero = self.encrypt(&Nat::zero(), rng);
        self.add(a, &zero)
    }

    fn ciphertext_bytes(&self) -> usize {
        self.ct_bytes
    }

    fn ciphertext_to_bytes(&self, ct: &GmCt) -> Vec<u8> {
        ct.0.to_le_bytes_padded(self.ct_bytes)
    }

    fn ciphertext_from_bytes(&self, bytes: &[u8]) -> Option<GmCt> {
        if bytes.len() != self.ct_bytes {
            return None;
        }
        let v = Nat::from_le_bytes(bytes);
        if v >= self.n || v.is_zero() {
            return None;
        }
        Some(GmCt(v))
    }
}

impl HomomorphicSk<GmPk> for GmSk {
    fn decrypt(&self, ct: &GmCt) -> Nat {
        count(Op::GmDecrypt, 1);
        // Legendre symbol via Euler's criterion mod p.
        let e = mod_pow(&ct.0, &self.p.sub(&Nat::one()).shr(1), &self.p);
        if e.is_one() {
            Nat::zero()
        } else {
            Nat::one()
        }
    }
}

/// Marker type implementing [`HomomorphicScheme`] for Goldwasser–Micali.
#[derive(Debug, Clone, Copy)]
pub struct GoldwasserMicali;

impl HomomorphicScheme for GoldwasserMicali {
    type Pk = GmPk;
    type Sk = GmSk;

    /// Generates a GM key pair with an approximately `bits`-bit Blum modulus.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 16`.
    fn keygen<R: RandomSource + ?Sized>(bits: usize, rng: &mut R) -> (GmPk, GmSk) {
        assert!(bits >= 16);
        let p = gen_blum_prime(bits / 2, rng);
        let q = loop {
            let q = gen_blum_prime(bits - bits / 2, rng);
            if q != p {
                break q;
            }
        };
        let n = p.mul(&q);
        // For Blum primes, z = n - 1 ≡ -1 is a QNR mod both p and q with
        // Jacobi symbol (+1) mod n.
        let z = n.sub(&Nat::one());
        debug_assert_eq!(jacobi(&z, &n), 1);
        let ct_bytes = n.bit_len().div_ceil(8);
        (
            GmPk {
                n,
                z,
                ct_bytes,
                two: Nat::from(2u64),
            },
            GmSk { p },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chacha::ChaChaRng;

    fn keys() -> (GmPk, GmSk, ChaChaRng) {
        let mut rng = ChaChaRng::from_u64_seed(0xB0B);
        let (pk, sk) = GoldwasserMicali::keygen(128, &mut rng);
        (pk, sk, rng)
    }

    #[test]
    fn encrypt_decrypt_bits() {
        let (pk, sk, mut rng) = keys();
        for _ in 0..10 {
            assert_eq!(sk.decrypt(&pk.encrypt(&Nat::zero(), &mut rng)), Nat::zero());
            assert_eq!(sk.decrypt(&pk.encrypt(&Nat::one(), &mut rng)), Nat::one());
        }
    }

    #[test]
    fn xor_homomorphism() {
        let (pk, sk, mut rng) = keys();
        for (a, b) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            let ct = pk.add(
                &pk.encrypt(&Nat::from(a), &mut rng),
                &pk.encrypt(&Nat::from(b), &mut rng),
            );
            assert_eq!(sk.decrypt(&ct), Nat::from(a ^ b), "a={a} b={b}");
        }
    }

    #[test]
    fn ciphertexts_have_jacobi_one() {
        let (pk, _, mut rng) = keys();
        for bit in [0u64, 1] {
            let ct = pk.encrypt(&Nat::from(bit), &mut rng);
            assert_eq!(jacobi(&ct.0, pk.n()), 1);
        }
    }

    #[test]
    fn probabilistic_and_rerandomizable() {
        let (pk, sk, mut rng) = keys();
        let a = pk.encrypt(&Nat::one(), &mut rng);
        let b = pk.encrypt(&Nat::one(), &mut rng);
        assert_ne!(a, b);
        let r = pk.rerandomize(&a, &mut rng);
        assert_ne!(r, a);
        assert_eq!(sk.decrypt(&r), Nat::one());
    }

    #[test]
    fn serialization_roundtrip() {
        let (pk, sk, mut rng) = keys();
        let ct = pk.encrypt(&Nat::one(), &mut rng);
        let bytes = pk.ciphertext_to_bytes(&ct);
        assert_eq!(bytes.len(), pk.ciphertext_bytes());
        assert_eq!(
            sk.decrypt(&pk.ciphertext_from_bytes(&bytes).unwrap()),
            Nat::one()
        );
    }

    #[test]
    fn mul_const_selects_bit() {
        let (pk, sk, mut rng) = keys();
        let ct = pk.encrypt(&Nat::one(), &mut rng);
        assert_eq!(sk.decrypt(&pk.mul_const(&ct, &Nat::zero())), Nat::zero());
        assert_eq!(sk.decrypt(&pk.mul_const(&ct, &Nat::one())), Nat::one());
    }
}
