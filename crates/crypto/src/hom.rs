//! The homomorphic-encryption abstraction used by the SPFE protocols.
//!
//! The paper (§2, "Homomorphic encryption") requires an encryption scheme
//! whose plaintexts live in a group `G` and where `E(a) · E(b) = E(a + b)`
//! (hence `E(a)^c = E(c·a)`). The single-server input-selection protocols
//! (§3.3.2, §3.3.3), the arithmetic-circuit MPC (§3.3.4) and the §4
//! statistical protocols are all generic over this trait; concrete
//! instantiations are [Paillier](crate::paillier) (large plaintext group
//! `Z_n`), [Goldwasser–Micali](crate::gm) (`G = Z_2`, the scheme cited by the
//! paper), and [exponential ElGamal](crate::elgamal) (small bounded
//! plaintexts).

use spfe_math::{Nat, RandomSource};

/// An additively homomorphic public key over a plaintext group `Z_u`.
///
/// Keys and ciphertexts are `Send + Sync` so the protocol layers can shard
/// their per-cell work across the [`spfe_math::par`] worker pool.
pub trait HomomorphicPk: Clone + std::fmt::Debug + Send + Sync {
    /// The ciphertext type.
    type Ciphertext: Clone + std::fmt::Debug + PartialEq + Eq + Send + Sync;

    /// The plaintext modulus `u` (plaintexts are residues in `[0, u)`).
    fn plaintext_modulus(&self) -> &Nat;

    /// Encrypts a plaintext (reduced mod `u`).
    fn encrypt<R: RandomSource + ?Sized>(&self, m: &Nat, rng: &mut R) -> Self::Ciphertext;

    /// Homomorphic addition: `E(a) ⊕ E(b) = E(a + b mod u)`.
    fn add(&self, a: &Self::Ciphertext, b: &Self::Ciphertext) -> Self::Ciphertext;

    /// Homomorphic scalar multiplication: `c ⊙ E(a) = E(c·a mod u)`.
    fn mul_const(&self, a: &Self::Ciphertext, c: &Nat) -> Self::Ciphertext;

    /// Fresh randomization of a ciphertext (output decrypts identically but
    /// is distributed like a fresh encryption).
    fn rerandomize<R: RandomSource + ?Sized>(
        &self,
        a: &Self::Ciphertext,
        rng: &mut R,
    ) -> Self::Ciphertext;

    /// Serialized ciphertext size in bytes (the unit of communication
    /// accounting — the paper's security parameter `κ` enters costs through
    /// this quantity).
    fn ciphertext_bytes(&self) -> usize;

    /// Serializes a ciphertext (fixed width [`Self::ciphertext_bytes`]).
    fn ciphertext_to_bytes(&self, ct: &Self::Ciphertext) -> Vec<u8>;

    /// Deserializes a ciphertext.
    ///
    /// # Errors
    ///
    /// Returns `None` on malformed input.
    fn ciphertext_from_bytes(&self, bytes: &[u8]) -> Option<Self::Ciphertext>;

    /// Encrypts a batch of plaintexts: element-for-element equivalent to
    /// calling [`HomomorphicPk::encrypt`] in order, **including the order
    /// in which randomness is drawn from `rng`** — transcripts produced via
    /// the batch path are byte-identical to the serial path.
    ///
    /// The default implementation is the serial loop; schemes override it
    /// to pre-draw the per-ciphertext randomness (same stream) and run the
    /// public-key operations on the [`spfe_math::par`] worker pool.
    fn encrypt_batch<R: RandomSource + ?Sized>(
        &self,
        ms: &[Nat],
        rng: &mut R,
    ) -> Vec<Self::Ciphertext> {
        ms.iter().map(|m| self.encrypt(m, rng)).collect()
    }

    /// Scalar-multiplies a batch: `out[i] = E(cs[i] · D(cts[i]))`,
    /// element-for-element equivalent to [`HomomorphicPk::mul_const`].
    /// Deterministic (no randomness), so parallel and serial paths agree
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `cts.len() != cs.len()`.
    fn scalar_mul_batch(&self, cts: &[Self::Ciphertext], cs: &[Nat]) -> Vec<Self::Ciphertext> {
        assert_eq!(cts.len(), cs.len(), "batch length mismatch");
        cts.iter()
            .zip(cs)
            .map(|(ct, c)| self.mul_const(ct, c))
            .collect()
    }

    /// `E(a) ⊖ E(b) = E(a - b mod u)` — derived from `add`/`mul_const`.
    fn sub(&self, a: &Self::Ciphertext, b: &Self::Ciphertext) -> Self::Ciphertext {
        let u = self.plaintext_modulus().clone();
        let neg_b = self.mul_const(b, &u.sub(&Nat::one()));
        self.add(a, &neg_b)
    }

    /// Encrypts zero (useful for blinding).
    fn encrypt_zero<R: RandomSource + ?Sized>(&self, rng: &mut R) -> Self::Ciphertext {
        self.encrypt(&Nat::zero(), rng)
    }
}

/// The matching secret key.
pub trait HomomorphicSk<Pk: HomomorphicPk>: Clone + std::fmt::Debug {
    /// Decrypts a ciphertext to its canonical plaintext residue.
    fn decrypt(&self, ct: &Pk::Ciphertext) -> Nat;
}

/// A key-generation entry point, so protocol code can be written generically
/// over the scheme.
pub trait HomomorphicScheme {
    /// Public-key type.
    type Pk: HomomorphicPk;
    /// Secret-key type.
    type Sk: HomomorphicSk<Self::Pk>;

    /// Generates a key pair at the given security level (modulus bits).
    fn keygen<R: RandomSource + ?Sized>(bits: usize, rng: &mut R) -> (Self::Pk, Self::Sk);
}
