//! Exponential ElGamal over a Schnorr group.
//!
//! Encrypts `m` as `(g^r, g^m · y^r)` in the order-`q` subgroup of `Z_p^*`
//! for a safe prime `p = 2q + 1`. Multiplying ciphertexts adds plaintexts in
//! the exponent, so the scheme is additively homomorphic for plaintexts
//! bounded by a decryption bound `B` (decryption solves a discrete log by
//! baby-step/giant-step in `O(√B)`).
//!
//! This is the "small-modulus homomorphic encryption" the paper appeals to
//! in §3.3.2 ("since F can be chosen to be roughly of size n, the exponents
//! can be made small").

use crate::hom::{HomomorphicPk, HomomorphicSk};
use spfe_math::par::CostClass;
use spfe_math::prime::gen_safe_prime;
use spfe_math::{FixedBasePow, Montgomery, Nat, RandomSource};
use spfe_obs::{count, Op};
use std::collections::HashMap;
use std::sync::Arc;

/// An ElGamal ciphertext `(a, b) = (g^r, g^m y^r)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElGamalCt {
    pub(crate) a: Nat,
    pub(crate) b: Nat,
}

/// A Schnorr group: the order-`q` subgroup of `Z_p^*` for safe prime `p = 2q+1`.
#[derive(Clone)]
pub struct SchnorrGroup {
    p: Nat,
    q: Nat,
    g: Nat,
    mont: Arc<Montgomery>,
    /// Fixed-base comb table for the generator — every `g^e` in the scheme
    /// (query encryption, OT setup) hits this instead of a generic pow.
    g_pow: Arc<FixedBasePow>,
}

impl std::fmt::Debug for SchnorrGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchnorrGroup")
            .field("p_bits", &self.p.bit_len())
            .finish()
    }
}

impl SchnorrGroup {
    /// Generates a fresh group with a `bits`-bit safe prime.
    pub fn generate<R: RandomSource + ?Sized>(bits: usize, rng: &mut R) -> Self {
        let (p, q) = gen_safe_prime(bits, rng);
        let mont = Arc::new(Montgomery::new(p.clone()));
        // g = h² for random h ≠ ±1 generates the order-q subgroup.
        let g = loop {
            let h = Nat::random_below(rng, &p);
            let g = mont.pow(&h, &Nat::from(2u64));
            if !g.is_one() && !g.is_zero() {
                break g;
            }
        };
        let g_pow = Arc::new(FixedBasePow::new(Arc::clone(&mont), &g, q.bit_len()));
        SchnorrGroup {
            p,
            q,
            g,
            mont,
            g_pow,
        }
    }

    /// The RFC 3526 1536-bit MODP group (generator 2 squared to land in the
    /// prime-order subgroup) — a realistic-size group with no generation cost.
    pub fn rfc3526_1536() -> Self {
        let p = Nat::from_hex(concat!(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08",
            "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B",
            "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9",
            "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6",
            "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8",
            "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D",
            "670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"
        ))
        .expect("valid hex");
        let q = p.sub(&Nat::one()).shr(1);
        let mont = Arc::new(Montgomery::new(p.clone()));
        let g = Nat::from(4u64); // 2² generates the order-q subgroup
        let g_pow = Arc::new(FixedBasePow::new(Arc::clone(&mont), &g, q.bit_len()));
        SchnorrGroup {
            p,
            q,
            g,
            mont,
            g_pow,
        }
    }

    /// Derives a "nothing-up-my-sleeve" subgroup element from a label: the
    /// square of a hash-derived residue. No party knows its discrete log,
    /// which lets protocols (e.g. the Naor–Pinkas OT) use a public constant
    /// in place of a sender-chosen setup message, saving half a round.
    pub fn hash_to_group(&self, label: &[u8]) -> Nat {
        let mut counter = 0u64;
        loop {
            let digest = crate::sha256::prf(
                &self.p.to_be_bytes(),
                b"spfe-hash-to-group",
                &[label, &counter.to_le_bytes()].concat(),
            );
            let candidate = Nat::from_be_bytes(&digest).rem(&self.p);
            let sq = self.pow(&candidate, &Nat::from(2u64));
            if !sq.is_zero() && !sq.is_one() {
                return sq;
            }
            counter += 1;
        }
    }

    /// The prime modulus `p`.
    pub fn p(&self) -> &Nat {
        &self.p
    }

    /// The subgroup order `q`.
    pub fn q(&self) -> &Nat {
        &self.q
    }

    /// The subgroup generator `g`.
    pub fn g(&self) -> &Nat {
        &self.g
    }

    /// `base^e mod p`.
    pub fn pow(&self, base: &Nat, e: &Nat) -> Nat {
        self.mont.pow(base, e)
    }

    /// `g^e mod p` via the precomputed fixed-base comb table — the hot
    /// exponentiation of query encryption and OT setup.
    pub fn pow_g(&self, e: &Nat) -> Nat {
        self.g_pow.pow(e)
    }

    /// `a * b mod p`.
    pub fn mul(&self, a: &Nat, b: &Nat) -> Nat {
        a.mul(b).rem(&self.p)
    }

    /// `a^{-1} mod p`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not invertible.
    pub fn inv(&self, a: &Nat) -> Nat {
        spfe_math::modular::mod_inv(a, &self.p).expect("non-invertible group element")
    }

    /// Uniformly random exponent in `[0, q)`.
    pub fn random_exponent<R: RandomSource + ?Sized>(&self, rng: &mut R) -> Nat {
        Nat::random_below(rng, &self.q)
    }

    /// Serialized size of one group element.
    pub fn element_bytes(&self) -> usize {
        self.p.bit_len().div_ceil(8)
    }
}

/// Exponential-ElGamal public key.
#[derive(Clone)]
pub struct ElGamalPk {
    group: SchnorrGroup,
    y: Nat,
    /// Fixed-base comb table for `y` — pairs with `SchnorrGroup::g_pow` so
    /// an encryption `(g^r, g^m y^r)` does no generic exponentiation at all.
    y_pow: Arc<FixedBasePow>,
    /// Decryption bound: plaintexts must lie in `[0, bound)`.
    bound: u64,
    bound_nat: Nat,
}

impl std::fmt::Debug for ElGamalPk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElGamalPk")
            .field("p_bits", &self.group.p.bit_len())
            .field("bound", &self.bound)
            .finish()
    }
}

/// Exponential-ElGamal secret key.
#[derive(Clone)]
pub struct ElGamalSk {
    pk: ElGamalPk,
    x: Nat,
}

impl std::fmt::Debug for ElGamalSk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElGamalSk").finish_non_exhaustive()
    }
}

impl ElGamalPk {
    /// The underlying group.
    pub fn group(&self) -> &SchnorrGroup {
        &self.group
    }

    /// The public element `y = g^x`.
    pub fn y(&self) -> &Nat {
        &self.y
    }

    /// The rng-free core of encryption: `(g^r, g^m y^r)` from both comb
    /// tables. Shared by [`HomomorphicPk::encrypt`] and the batch path so
    /// they are bit-identical by construction.
    fn encrypt_with_r(&self, m: &Nat, r: &Nat) -> ElGamalCt {
        count(Op::ElGamalEncrypt, 1);
        let g = &self.group;
        let a = g.pow_g(r);
        let gm = g.pow_g(&m.rem(&g.q));
        let b = g.mul(&gm, &self.y_pow.pow(r));
        ElGamalCt { a, b }
    }
}

/// Generates an exponential-ElGamal key pair over `group` with plaintexts in
/// `[0, bound)`.
///
/// # Panics
///
/// Panics if `bound == 0`.
pub fn elgamal_keygen<R: RandomSource + ?Sized>(
    group: SchnorrGroup,
    bound: u64,
    rng: &mut R,
) -> (ElGamalPk, ElGamalSk) {
    assert!(bound > 0);
    let x = group.random_exponent(rng);
    let y = group.pow_g(&x);
    let y_pow = Arc::new(FixedBasePow::new(
        Arc::clone(&group.mont),
        &y,
        group.q.bit_len(),
    ));
    let pk = ElGamalPk {
        group,
        y,
        y_pow,
        bound,
        bound_nat: Nat::from(bound),
    };
    let sk = ElGamalSk { pk: pk.clone(), x };
    (pk, sk)
}

impl HomomorphicPk for ElGamalPk {
    type Ciphertext = ElGamalCt;

    fn plaintext_modulus(&self) -> &Nat {
        // Plaintexts are exponents; homomorphic sums are exact integers as
        // long as they stay below the decryption bound.
        &self.bound_nat
    }

    fn encrypt<R: RandomSource + ?Sized>(&self, m: &Nat, rng: &mut R) -> ElGamalCt {
        let r = self.group.random_exponent(rng);
        self.encrypt_with_r(m, &r)
    }

    fn add(&self, a: &ElGamalCt, b: &ElGamalCt) -> ElGamalCt {
        count(Op::HomAdd, 1);
        let g = &self.group;
        ElGamalCt {
            a: g.mul(&a.a, &b.a),
            b: g.mul(&a.b, &b.b),
        }
    }

    fn mul_const(&self, a: &ElGamalCt, c: &Nat) -> ElGamalCt {
        count(Op::HomScalarMul, 1);
        let g = &self.group;
        let c = c.rem(&g.q);
        ElGamalCt {
            a: g.pow(&a.a, &c),
            b: g.pow(&a.b, &c),
        }
    }

    fn rerandomize<R: RandomSource + ?Sized>(&self, a: &ElGamalCt, rng: &mut R) -> ElGamalCt {
        count(Op::HomRerandomize, 1);
        self.add(a, &self.encrypt(&Nat::zero(), rng))
    }

    fn ciphertext_bytes(&self) -> usize {
        2 * self.group.element_bytes()
    }

    fn ciphertext_to_bytes(&self, ct: &ElGamalCt) -> Vec<u8> {
        let w = self.group.element_bytes();
        let mut out = ct.a.to_le_bytes_padded(w);
        out.extend(ct.b.to_le_bytes_padded(w));
        out
    }

    fn ciphertext_from_bytes(&self, bytes: &[u8]) -> Option<ElGamalCt> {
        let w = self.group.element_bytes();
        if bytes.len() != 2 * w {
            return None;
        }
        let a = Nat::from_le_bytes(&bytes[..w]);
        let b = Nat::from_le_bytes(&bytes[w..]);
        if a >= *self.group.p() || b >= *self.group.p() {
            return None;
        }
        Some(ElGamalCt { a, b })
    }

    fn encrypt_batch<R: RandomSource + ?Sized>(&self, ms: &[Nat], rng: &mut R) -> Vec<ElGamalCt> {
        // Draw the per-ciphertext exponents in serial order (same stream as
        // the serial loop), then fan the rng-free exponentiations out.
        let rs: Vec<Nat> = ms.iter().map(|_| self.group.random_exponent(rng)).collect();
        let jobs: Vec<(&Nat, &Nat)> = ms.iter().zip(&rs).collect();
        spfe_math::par::par_map_cost(CostClass::Heavy, &jobs, |&(m, r)| self.encrypt_with_r(m, r))
    }

    fn scalar_mul_batch(&self, cts: &[ElGamalCt], cs: &[Nat]) -> Vec<ElGamalCt> {
        assert_eq!(cts.len(), cs.len(), "batch length mismatch");
        let jobs: Vec<(&ElGamalCt, &Nat)> = cts.iter().zip(cs).collect();
        spfe_math::par::par_map_cost(CostClass::Heavy, &jobs, |&(ct, c)| self.mul_const(ct, c))
    }
}

impl HomomorphicSk<ElGamalPk> for ElGamalSk {
    /// Decrypts by recovering `g^m` and solving the discrete log with
    /// baby-step/giant-step over `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if the plaintext is out of range (homomorphic overflow).
    fn decrypt(&self, ct: &ElGamalCt) -> Nat {
        count(Op::ElGamalDecrypt, 1);
        let g = &self.pk.group;
        let s = g.pow(&ct.a, &self.x);
        let gm = g.mul(&ct.b, &g.inv(&s));
        let m = bsgs(g, &gm, self.pk.bound).expect("plaintext exceeded decryption bound");
        Nat::from(m)
    }
}

/// Baby-step/giant-step: finds `m ∈ [0, bound)` with `g^m = target`.
fn bsgs(group: &SchnorrGroup, target: &Nat, bound: u64) -> Option<u64> {
    let step = (bound as f64).sqrt().ceil() as u64 + 1;
    // Baby steps: g^j for j in [0, step).
    let mut table: HashMap<Vec<u8>, u64> = HashMap::with_capacity(step as usize);
    let mut cur = Nat::one();
    for j in 0..step {
        table.entry(cur.to_be_bytes()).or_insert(j);
        cur = group.mul(&cur, &group.g);
    }
    // Giant steps: target · (g^-step)^i.
    let giant = group.inv(&group.pow_g(&Nat::from(step)));
    let mut gamma = target.clone();
    for i in 0..=step {
        if let Some(&j) = table.get(&gamma.to_be_bytes()) {
            let m = i * step + j;
            if m < bound {
                return Some(m);
            }
        }
        gamma = group.mul(&gamma, &giant);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chacha::ChaChaRng;

    fn setup() -> (ElGamalPk, ElGamalSk, ChaChaRng) {
        let mut rng = ChaChaRng::from_u64_seed(0xE16A);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = elgamal_keygen(group, 1 << 20, &mut rng);
        (pk, sk, rng)
    }

    #[test]
    fn roundtrip_small_values() {
        let (pk, sk, mut rng) = setup();
        for v in [0u64, 1, 2, 1000, (1 << 20) - 1] {
            let ct = pk.encrypt(&Nat::from(v), &mut rng);
            assert_eq!(sk.decrypt(&ct), Nat::from(v), "v={v}");
        }
    }

    #[test]
    fn additive_homomorphism() {
        let (pk, sk, mut rng) = setup();
        let ct = pk.add(
            &pk.encrypt(&Nat::from(123u64), &mut rng),
            &pk.encrypt(&Nat::from(456u64), &mut rng),
        );
        assert_eq!(sk.decrypt(&ct), Nat::from(579u64));
    }

    #[test]
    fn scalar_multiplication() {
        let (pk, sk, mut rng) = setup();
        let ct = pk.mul_const(&pk.encrypt(&Nat::from(100u64), &mut rng), &Nat::from(37u64));
        assert_eq!(sk.decrypt(&ct), Nat::from(3700u64));
    }

    #[test]
    #[should_panic(expected = "decryption bound")]
    fn overflow_panics() {
        let (pk, sk, mut rng) = setup();
        let big = pk.encrypt(&Nat::from(1u64 << 21), &mut rng);
        let _ = sk.decrypt(&big);
    }

    #[test]
    fn serialization_roundtrip() {
        let (pk, sk, mut rng) = setup();
        let ct = pk.encrypt(&Nat::from(777u64), &mut rng);
        let bytes = pk.ciphertext_to_bytes(&ct);
        assert_eq!(bytes.len(), pk.ciphertext_bytes());
        assert_eq!(
            sk.decrypt(&pk.ciphertext_from_bytes(&bytes).unwrap()),
            Nat::from(777u64)
        );
    }

    #[test]
    fn rfc3526_group_is_well_formed() {
        let g = SchnorrGroup::rfc3526_1536();
        // g^q == 1 (generator is in the order-q subgroup).
        assert!(g.pow(g.g(), g.q()).is_one());
        assert_eq!(g.element_bytes(), 192);
    }

    #[test]
    fn pow_g_matches_generic_pow() {
        let mut rng = ChaChaRng::from_u64_seed(0x9069);
        for group in [
            SchnorrGroup::generate(96, &mut rng),
            SchnorrGroup::rfc3526_1536(),
        ] {
            for _ in 0..8 {
                let e = group.random_exponent(&mut rng);
                assert_eq!(group.pow_g(&e), group.pow(group.g(), &e));
            }
            // Past-capacity exponents fall back to the generic ladder.
            let big = group.q().mul(&Nat::from(3u64)).add(&Nat::from(7u64));
            assert_eq!(group.pow_g(&big), group.pow(group.g(), &big));
        }
    }

    #[test]
    fn batch_apis_bit_identical_to_serial() {
        let (pk, _sk, rng) = setup();
        let ms: Vec<Nat> = (0..9u64).map(|v| Nat::from(v * 31 % 1000)).collect();

        let mut rng_a = rng.clone();
        let serial: Vec<ElGamalCt> = ms.iter().map(|m| pk.encrypt(m, &mut rng_a)).collect();
        for threads in [1, 4] {
            spfe_math::par::set_threads(Some(threads));
            let mut rng_b = rng.clone();
            let batch = pk.encrypt_batch(&ms, &mut rng_b);
            spfe_math::par::set_threads(None);
            assert_eq!(serial, batch, "threads={threads}");
            // The rng must end in the same state as the serial loop left it.
            assert_eq!(
                rng_a.clone().next_u64(),
                rng_b.next_u64(),
                "threads={threads}"
            );
        }

        let cs: Vec<Nat> = (0..9u64).map(|v| Nat::from(v + 2)).collect();
        let serial_mul: Vec<ElGamalCt> = serial
            .iter()
            .zip(&cs)
            .map(|(ct, c)| pk.mul_const(ct, c))
            .collect();
        assert_eq!(pk.scalar_mul_batch(&serial, &cs), serial_mul);
    }

    #[test]
    fn rerandomize_fresh() {
        let (pk, sk, mut rng) = setup();
        let ct = pk.encrypt(&Nat::from(5u64), &mut rng);
        let r = pk.rerandomize(&ct, &mut rng);
        assert_ne!(r, ct);
        assert_eq!(sk.decrypt(&r), Nat::from(5u64));
    }
}
