//! Private statistics over a census-style database — the paper's §1
//! motivating scenario, end to end.
//!
//! The database pairs *public* attributes (zip code, age bracket) with
//! *private* salaries. A market-research client selects its sample from the
//! public attributes, then privately computes average **and variance** of
//! the private salaries of that sample (the §4 "package"), without the
//! database owner ever learning which population the client studies.
//!
//! Run with: `cargo run --example private_statistics`

use spfe::core::database::Database;
use spfe::core::stats::average_and_variance;
use spfe::crypto::{ChaChaRng, HomomorphicScheme, Paillier, SchnorrGroup};
use spfe::math::Fp64;
use spfe::transport::Transcript;

fn main() {
    let mut rng = ChaChaRng::from_os_entropy();
    let group = SchnorrGroup::generate(128, &mut rng);
    let (pk, sk) = Paillier::keygen(320, &mut rng);

    // The server's census database: public (zip, age), private (salary).
    let db = Database::census(2_000, &mut rng);
    println!("server: census database with {} records", db.len());

    // Client-side selection from PUBLIC data only: a specific age bracket.
    let bracket = 7u8;
    let mut sample = db.select_by_age(bracket);
    sample.truncate(8); // pay for a sample of 8
    assert!(!sample.is_empty(), "bracket not represented; rerun");
    println!(
        "client: studying age bracket {bracket} — sample of {} records (indices hidden from server)",
        sample.len()
    );

    // The server keeps x and x' = x² side by side (the §4 package).
    let squared = db.squared();
    let max_sq = squared.iter().copied().max().unwrap();
    let field = Fp64::at_least(max_sq * sample.len() as u64 + db.len() as u64 + 1);

    let mut t = Transcript::new(1);
    let (sum, sum_sq) = average_and_variance(
        &mut t,
        &group,
        &pk,
        &sk,
        db.values(),
        &squared,
        &sample,
        field,
        &mut rng,
    )
    .expect("honest transport");

    let m = sample.len() as u64;
    let mean = sum / m;
    // Population variance = E[x²] − E[x]² (integer approximation).
    let variance = sum_sq / m - mean * mean;
    println!("\nprivate average salary: {mean}");
    println!(
        "private salary std-dev: ~{}",
        (variance as f64).sqrt() as u64
    );

    // Verify against the clear-text ground truth.
    let clear_sum: u64 = sample.iter().map(|&i| db.values()[i]).sum();
    let clear_sq: u64 = sample.iter().map(|&i| squared[i]).sum();
    assert_eq!((sum, sum_sq), (clear_sum, clear_sq));

    let report = t.report();
    println!(
        "\nprotocol: {} round(s), {} bytes total (database is {} bytes)",
        report.rounds(),
        report.total_bytes(),
        db.len() * 8,
    );
}
