//! Two extensions from the paper's remarks, working together:
//!
//! 1. **Fault tolerance** (§3.1): "t′ malicious servers can be tolerated
//!    by adding 2t′ additional servers" — the client decodes its answer
//!    through Byzantine replies with Berlekamp–Welch.
//! 2. **Function hiding** (§1): a universal `f` lets the client keep even
//!    the *statistic* secret — the server sees only a public menu.
//!
//! Run with: `cargo run --release --example robust_and_hidden`

use spfe::core::input_select::select1;
use spfe::core::multiserver::{run_robust, MsFunction, MultiServerParams};
use spfe::core::universal::universal_yao_phase;
use spfe::core::Statistic;
use spfe::crypto::{ChaChaRng, HomomorphicScheme, Paillier, SchnorrGroup};
use spfe::math::Fp64;
use spfe::transport::Transcript;

fn main() {
    let mut rng = ChaChaRng::from_os_entropy();

    // --- Part 1: Byzantine replicas -------------------------------------
    let n = 1_024;
    let readings: Vec<u64> = (0..n as u64).map(|i| 50 + (i * 13) % 900).collect();
    let sample = [3usize, 500, 1_023];
    let field = Fp64::at_least(n as u64 + 1_000 * 3);
    let params = MultiServerParams::new(n, 1, field, MsFunction::Sum { m: 3 });
    let expect: u64 = sample.iter().map(|&i| readings[i]).sum();

    for liars in [0usize, 1, 2] {
        let k = params.num_servers() + 2 * liars;
        let mut t = Transcript::new(k);
        let got = run_robust(
            &mut t,
            &params,
            &readings,
            &sample,
            liars,
            |h, honest| {
                if h < liars {
                    honest.wrapping_mul(977).wrapping_add(1) % field.modulus()
                } else {
                    honest
                }
            },
            &mut rng,
        )
        .expect("decodable");
        assert_eq!(got, expect);
        println!(
            "{k:>2} servers, {liars} Byzantine: private sum still = {got} \
             ({} bytes, 1 round)",
            t.report().total_bytes()
        );
    }

    // --- Part 2: hiding the statistic -----------------------------------
    let group = SchnorrGroup::generate(128, &mut rng);
    let (pk, sk) = Paillier::keygen(256, &mut rng);
    let menu = vec![
        Statistic::Sum,
        Statistic::Frequency { keyword: 63 },
        Statistic::CountBelow { threshold: 100 },
    ];
    let small_db: Vec<u64> = (0..256u64).map(|i| (i * 7) % 128).collect();
    let field = Fp64::at_least(600);
    let sample = [9usize, 63, 200];

    println!("\npublic menu: {menu:?}");
    for choice in 0..menu.len() {
        let mut t = Transcript::new(1);
        let shares = select1(
            &mut t, &group, &pk, &sk, &small_db, &sample, field, &mut rng,
        )
        .expect("honest transport");
        let got = universal_yao_phase(&mut t, &group, &shares, &menu, choice, &mut rng)
            .expect("honest transport");
        println!(
            "client secretly evaluates entry {choice}: result = {got} \
             (server cannot tell which entry ran)"
        );
    }
}
