//! A tour of Table 1: all four single-server SPFE constructions computing
//! the same private sum, with their measured rounds and communication next
//! to the paper's qualitative columns.
//!
//! Run with: `cargo run --release --example table1_tour`

use spfe::circuits::builders::sum_circuit;
use spfe::core::psm_spfe::run_yao_psm;
use spfe::core::security::table1;
use spfe::core::two_phase::{
    run_select1_yao, run_select2v1_yao, run_select2v2_yao, run_select3_arith,
};
use spfe::core::Statistic;
use spfe::crypto::{ChaChaRng, HomomorphicScheme, Paillier, SchnorrGroup};
use spfe::math::Fp64;
use spfe::transport::Transcript;

fn main() {
    let mut rng = ChaChaRng::from_u64_seed(0x7AB1E);
    let group = SchnorrGroup::generate(96, &mut rng);
    let (pk, sk) = Paillier::keygen(160, &mut rng);
    let (spk, ssk) = Paillier::keygen(160, &mut rng);

    let n = 256;
    let db: Vec<u64> = (0..n as u64).map(|i| (i * 13) % 256).collect();
    let indices = [3usize, 77, 150, 255];
    let truth: u64 = indices.iter().map(|&i| db[i]).sum();
    let field = Fp64::at_least(1 << 11); // > n and > any partial sum
    let value_bits = 8;

    println!(
        "database n={n}, sample m={}, f = sum, truth = {truth}\n",
        indices.len()
    );
    println!(
        "{:<12} {:>7} {:>9} {:>12} {:>10}  complexity",
        "section", "rounds", "(paper)", "bytes", "security"
    );

    // §3.2 — PSM-based (strong security).
    let circuit = sum_circuit(indices.len(), value_bits);
    let mut t = Transcript::new(1);
    let got = run_yao_psm(
        &mut t, &group, &pk, &sk, &db, &indices, &circuit, value_bits, &mut rng,
    )
    .expect("honest transport");
    assert_eq!(got, truth);
    print_row(&t, &table1::PSM);

    // §3.3.1 — m × SPIR input selection + Yao.
    let mut t = Transcript::new(1);
    let got = run_select1_yao(
        &mut t,
        &group,
        &pk,
        &sk,
        &db,
        &indices,
        &Statistic::Sum,
        field,
        &mut rng,
    )
    .expect("honest transport");
    assert_eq!(got[0], truth % field.modulus());
    print_row(&t, &table1::SELECT1);

    // §3.3.2 v1 — polynomial masking, client encrypts m² powers.
    let mut t = Transcript::new(1);
    let got = run_select2v1_yao(
        &mut t,
        &group,
        &pk,
        &sk,
        &db,
        &indices,
        &Statistic::Sum,
        field,
        &mut rng,
    )
    .expect("honest transport");
    assert_eq!(got[0], truth % field.modulus());
    print_row(&t, &table1::SELECT2_V1);

    // §3.3.2 v2 — server encrypts m coefficients.
    let mut t = Transcript::new(1);
    let got = run_select2v2_yao(
        &mut t,
        &group,
        &pk,
        &sk,
        &spk,
        &ssk,
        &db,
        &indices,
        &Statistic::Sum,
        field,
        &mut rng,
    )
    .expect("honest transport");
    assert_eq!(got[0], truth % field.modulus());
    print_row(&t, &table1::SELECT2_V2);

    // §3.3.3 — encrypted database + §3.3.4 arithmetic phase.
    let mut t = Transcript::new(1);
    let got = run_select3_arith(
        &mut t,
        &group,
        &pk,
        &sk,
        &spk,
        &ssk,
        &db,
        &indices,
        &Statistic::Sum,
        &mut rng,
    )
    .expect("honest transport");
    assert_eq!(got[0].to_u64().unwrap(), truth);
    print_row(&t, &table1::SELECT3);

    println!("\nAll five constructions returned the correct private sum.");
}

fn print_row(t: &Transcript, meta: &spfe::core::ProtocolMeta) {
    let rep = t.report();
    println!(
        "{:<12} {:>7} {:>9} {:>12} {:>10}  {}",
        meta.section,
        rep.rounds(),
        meta.rounds_str(),
        rep.total_bytes(),
        meta.security.to_string(),
        meta.complexity,
    );
}
