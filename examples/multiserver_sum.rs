//! The §3.1 multi-server protocol with information-theoretic privacy.
//!
//! When the database is replicated (for fault tolerance or content
//! distribution), the client gets *perfect* privacy against up to `t`
//! colluding servers, each server answers with a **single field element**,
//! and the same query can be reused against several databases — here the
//! values and their squares, giving average + variance in one round
//! (Theorem 2 + the §4 package).
//!
//! Run with: `cargo run --example multiserver_sum`

use spfe::core::multiserver::{run_sum_and_squares, MsFunction, MultiServerParams};
use spfe::crypto::ChaChaRng;
use spfe::math::Fp64;
use spfe::transport::Transcript;

fn main() {
    let mut rng = ChaChaRng::from_os_entropy();

    let n = 4_096;
    let purchases: Vec<u64> = (0..n as u64).map(|i| (i * 37) % 500).collect();
    let squares: Vec<u64> = purchases.iter().map(|&v| v * v).collect();
    let sample = [17usize, 250, 3_000, 4_095];

    for t_priv in [1usize, 2, 3] {
        let field = Fp64::at_least(260_000 * sample.len() as u64 + n as u64);
        let params = MultiServerParams::new(n, t_priv, field, MsFunction::Sum { m: sample.len() });
        let k = params.num_servers();

        let mut transcript = Transcript::new(k);
        let (sum, sum_sq) = run_sum_and_squares(
            &mut transcript,
            &params,
            &purchases,
            &squares,
            &sample,
            &mut rng,
        )
        .expect("honest transport");

        let expect: u64 = sample.iter().map(|&i| purchases[i]).sum();
        let expect_sq: u64 = sample.iter().map(|&i| squares[i]).sum();
        assert_eq!((sum, sum_sq), (expect, expect_sq));

        let report = transcript.report();
        println!(
            "t={t_priv}: k = t·log₂(n)+1 = {k} servers | sum={sum} sumsq={sum_sq} | \
             {} bytes total, {} bytes down ({} per server) | {} round",
            report.total_bytes(),
            report.server_to_client,
            report.server_to_client / k as u64,
            report.rounds(),
        );
    }

    println!(
        "\nEvery server saw only points of random degree-t curves: any t of\n\
         them combined learn information-theoretically nothing about the sample."
    );
}
