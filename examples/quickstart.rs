//! Quickstart: privately compute the sum of selected database items.
//!
//! A client picks `m` record indices; the server holds the database. After
//! one protocol round the client knows the sum of exactly those records,
//! the server has learned nothing about which records were touched, and
//! the total traffic is far below shipping the database.
//!
//! Run with: `cargo run --example quickstart`

use spfe::core::stats::weighted_sum;
use spfe::crypto::{ChaChaRng, HomomorphicScheme, Paillier, SchnorrGroup};
use spfe::math::Fp64;
use spfe::transport::Transcript;

fn main() {
    let mut rng = ChaChaRng::from_os_entropy();

    // --- Setup (once per client/server relationship) -------------------
    let group = SchnorrGroup::generate(128, &mut rng);
    let (pk, sk) = Paillier::keygen(256, &mut rng); // client's keys
    println!("setup: Schnorr group + Paillier keys generated");

    // --- The server's private database ---------------------------------
    let n = 100_000;
    let salaries: Vec<u64> = (0..n as u64)
        .map(|i| 30_000 + (i * 7_919) % 30_000)
        .collect();
    println!("server: database of {n} salaries");

    // --- The client's private selection --------------------------------
    let sample = [12usize, 7_077, 34_821, 60_002, 99_999];
    let weights = [1u64; 5];
    println!("client: wants the sum of {} hidden records", sample.len());

    // --- One round of the §4 weighted-sum protocol ----------------------
    let field = Fp64::at_least(n as u64 + 60_000 * sample.len() as u64);
    let mut transcript = Transcript::new(1);
    let sum = weighted_sum(
        &mut transcript,
        &group,
        &pk,
        &sk,
        &salaries,
        &sample,
        &weights,
        field,
        &mut rng,
    )
    .expect("honest transport");

    let expected: u64 = sample.iter().map(|&i| salaries[i]).sum();
    assert_eq!(sum, expected);

    let report = transcript.report();
    println!(
        "\nresult: private sum = {sum} (average {})",
        sum / sample.len() as u64
    );
    println!("rounds: {}", report.rounds());
    println!(
        "communication: {} bytes up, {} bytes down ({} total)",
        report.client_to_server,
        report.server_to_client,
        report.total_bytes()
    );
    println!(
        "vs. buying the database: {} bytes ({}x more)",
        n * 8,
        (n as u64 * 8) / report.total_bytes().max(1)
    );
}
