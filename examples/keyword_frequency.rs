//! §4 frequency counting: how many of the selected records equal a keyword?
//!
//! Two ways to get the same answer:
//! 1. the tailored §4 protocol — input selection, then one round of
//!    blinded, permuted comparisons (the client counts zero decryptions);
//! 2. the generic route — §3.3.1 input selection + a Yao-garbled
//!    share-reconstructing frequency circuit.
//!
//! Run with: `cargo run --example keyword_frequency`

use spfe::core::input_select::select1;
use spfe::core::stats::frequency;
use spfe::core::two_phase::run_select1_yao;
use spfe::core::Statistic;
use spfe::crypto::{ChaChaRng, HomomorphicScheme, Paillier, SchnorrGroup};
use spfe::math::Fp64;
use spfe::transport::Transcript;

fn main() {
    let mut rng = ChaChaRng::from_os_entropy();
    let group = SchnorrGroup::generate(128, &mut rng);
    let (pk, sk) = Paillier::keygen(256, &mut rng);

    // Database of product codes; the client wants to know how often code 42
    // appears among its (hidden) sample.
    let n = 500;
    let codes: Vec<u64> = (0..n as u64).map(|i| (i * i + 3 * i) % 100).collect();
    // Pick the keyword so the sample actually contains matches: records 42,
    // 142, 242 share the same code ((i² + 3i) mod 100 is periodic in 100).
    let sample = [5usize, 42, 142, 123, 242, 480];
    let keyword = codes[42];
    let truth = sample.iter().filter(|&&i| codes[i] == keyword).count() as u64;
    let field = Fp64::at_least((n as u64).max(101)); // p > n and > values

    // Route 1: the tailored §4 protocol.
    let mut t1 = Transcript::new(1);
    let shares = select1(&mut t1, &group, &pk, &sk, &codes, &sample, field, &mut rng)
        .expect("honest transport");
    let freq1 = frequency(&mut t1, &pk, &sk, &shares, keyword, &mut rng).expect("honest transport");
    println!(
        "§4 tailored protocol : frequency = {freq1} | {} rounds, {} bytes",
        t1.report().rounds(),
        t1.report().total_bytes()
    );

    // Route 2: generic two-phase SPFE with a garbled frequency circuit.
    let mut t2 = Transcript::new(1);
    let freq2 = run_select1_yao(
        &mut t2,
        &group,
        &pk,
        &sk,
        &codes,
        &sample,
        &Statistic::Frequency { keyword },
        field,
        &mut rng,
    )
    .expect("honest transport")[0];
    println!(
        "generic Yao route    : frequency = {freq2} | {} rounds, {} bytes",
        t2.report().rounds(),
        t2.report().total_bytes()
    );

    assert_eq!(freq1, truth);
    assert_eq!(freq2, truth);
    println!(
        "\nboth agree with the ground truth: {truth} of {} selected records match",
        sample.len()
    );
    println!(
        "the tailored protocol saves {} bytes over the generic route",
        t2.report().total_bytes() - t1.report().total_bytes()
    );
}
